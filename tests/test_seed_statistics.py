"""The seed axis: every figure cell is a statistic, not a point estimate.

The contract pinned here (acceptance criteria of the statistics refactor):

* ``seeds=(0,)`` specs are **bit-identical** to the pre-statistics
  pipeline — figure dictionaries carry no ``series_stats`` key and the
  rendered text report is byte-stable.
* Multi-seed specs aggregate per-seed frames into mean ± 95% CI cells,
  identically on the serial executor, the ``jobs=2`` process pool, and
  the cluster backend.
* Seeds are first-class cache-key components: a warm on-disk cache over a
  multi-seed sweep (including the per-trace standalone-IPC baselines)
  recomputes nothing.
* Adaptive campaigns (``Session.figure(..., target_ci=)``) escalate
  seeds *only* for cells whose CI half-width misses the target, and stop
  at the seed budget.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.aggregate import (
    SeriesStats,
    aggregate_figures,
    aggregate_headlines,
    wide_cells,
)
from repro.analysis.figures import FigureData
from repro.analysis.report import render_figure
from repro.api import ExperimentSpec, Session

#: tests/test_sweep_executor.py's tiny grid, with the seed axis added.
BASE = dict(
    sim_cycles=2_000,
    entries_per_core=800,
    attacker_entries=1_000,
    nrh_sweep=(1024, 64),
    attack_mixes=("MMLA",),
    benign_mixes=("MMLL",),
    mechanisms=("para", "rfm"),
)

SINGLE = ExperimentSpec(seeds=(0,), **BASE)
MULTI = ExperimentSpec(seeds=(0, 1, 2), **BASE)


def figure6_dict(spec: ExperimentSpec, **session_kwargs) -> dict:
    with Session(spec, cache_dir="", **session_kwargs) as session:
        return session.figure("fig6", nrh=64).as_dict()


class TestSeriesStats:
    def test_single_sample_degenerates_exactly(self):
        cell = SeriesStats.from_samples([1.25])
        assert cell == SeriesStats(n=1, mean=1.25, std=0.0, ci95=0.0)

    def test_known_samples(self):
        cell = SeriesStats.from_samples([1.0, 2.0, 3.0])
        assert cell.n == 3
        assert cell.mean == pytest.approx(2.0)
        assert cell.std == pytest.approx(1.0)
        assert cell.ci95 == pytest.approx(1.96 / math.sqrt(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesStats.from_samples([])

    def test_dict_round_trip(self):
        cell = SeriesStats.from_samples([0.5, 0.7])
        assert SeriesStats.from_dict(cell.as_dict()) == cell


class TestAggregation:
    def _frame(self, values) -> FigureData:
        figure = FigureData("f", "t", "x", "y", [64, 1024])
        figure.add_series("a", list(values))
        return figure

    def test_single_frame_is_identity(self):
        frame = self._frame([1.0, 2.0])
        assert aggregate_figures([frame]) is frame

    def test_multi_frame_means_and_stats(self):
        folded = aggregate_figures(
            [self._frame([1.0, 4.0]), self._frame([3.0, 4.0])]
        )
        series = folded.get("a")
        assert series.values == [2.0, 4.0]
        assert [cell.n for cell in series.stats] == [2, 2]
        assert series.stats[1].ci95 == 0.0  # identical samples
        assert "series_stats" in folded.as_dict()

    def test_structural_mismatch_rejected(self):
        other = FigureData("f", "t", "x", "y", [64])
        other.add_series("a", [1.0])
        with pytest.raises(ValueError):
            aggregate_figures([self._frame([1.0, 2.0]), other])

    def test_headline_fold(self):
        assert aggregate_headlines([{"k": 1.0}]) == {"k": 1.0}
        assert aggregate_headlines([{"k": 1.0}, {"k": 3.0}]) == {"k": 2.0}

    def test_wide_cells_selects_by_target(self):
        folded = aggregate_figures(
            [self._frame([1.0, 4.0]), self._frame([3.0, 4.0])]
        )
        assert wide_cells(folded, 0.1) == [("a", 64)]
        assert wide_cells(folded, 1e9) == []
        # Stat-less figures are never wide.
        assert wide_cells(self._frame([1.0, 2.0]), 0.0) == []


class TestSingleSeedByteStability:
    def test_no_series_stats_key(self):
        snap = figure6_dict(SINGLE, jobs=1)
        assert "series_stats" not in snap
        assert set(snap["series"]) == {"para+BH", "rfm+BH"}

    def test_render_has_no_ci_decorations(self):
        with Session(SINGLE, jobs=1, cache_dir="") as session:
            text = render_figure(session.figure("fig6", nrh=64))
        assert "±" not in text
        assert "CI" not in text


class TestMultiSeedAggregates:
    @pytest.fixture(scope="class")
    def serial(self) -> dict:
        return figure6_dict(MULTI, jobs=1)

    def test_stats_shape(self, serial):
        stats = serial["series_stats"]
        for label, series in serial["series"].items():
            for index, cell in enumerate(stats[label]):
                assert cell["n"] == 3
                assert math.isfinite(cell["ci95"]) and cell["ci95"] >= 0.0
                assert series[index] == cell["mean"]

    def test_multi_seed_mean_differs_from_seed_zero(self, serial):
        single = figure6_dict(SINGLE, jobs=1)
        assert serial["series"] != single["series"]

    def test_pool_matches_serial(self, serial):
        assert figure6_dict(MULTI, jobs=2) == serial

    def test_cluster_matches_serial(self, serial):
        assert figure6_dict(MULTI, backend="cluster", workers=2) == serial

    def test_headline_numbers_aggregate(self):
        with Session(MULTI, jobs=1, cache_dir="") as multi, \
                Session(SINGLE, jobs=1, cache_dir="") as single:
            folded = multi.headline_numbers()
            reference = single.headline_numbers()
            assert list(folded) == list(reference)
            assert folded != reference

    def test_report_renders_ci_cells(self):
        with Session(MULTI, jobs=1, cache_dir="") as session:
            text = render_figure(session.figure("fig6", nrh=64))
        assert "±" in text
        assert "(mean ± 95% CI half-width over 3 seeds)" in text


class TestSeedCacheHygiene:
    def test_seed_is_a_run_key_component(self):
        with Session(SINGLE, jobs=1, cache_dir="") as session:
            runner = session.runner
            zero = runner.run_key("MMLA", "para", 64, True, seed=0)
            one = runner.run_key("MMLA", "para", 64, True, seed=1)
            assert zero != one
            assert zero[1] == 0 and one[1] == 1

    def test_warm_cache_recomputes_nothing_across_seeds(self, tmp_path):
        spec = ExperimentSpec(seeds=(0, 1), **BASE)
        cache_dir = str(tmp_path / "cache")
        with Session(spec, jobs=1, cache_dir=cache_dir) as cold:
            figure = cold.figure("fig6", nrh=64)
            assert cold.runs_executed > 0
        # Grid points for *both* seeds and the per-seed standalone-IPC
        # baselines all landed on disk: a fresh session simulates nothing.
        with Session(spec, jobs=1, cache_dir=cache_dir) as warm:
            again = warm.figure("fig6", nrh=64)
            assert warm.runs_executed == 0
            assert warm.cache.misses == 0
        assert again.as_dict() == figure.as_dict()


class TestAdaptiveCampaigns:
    def test_requires_multi_seed_base(self):
        with Session(SINGLE, jobs=1, cache_dir="") as session:
            with pytest.raises(ValueError):
                session.figure("fig6", nrh=64, target_ci=0.01)

    def test_max_seeds_requires_target(self):
        with Session(MULTI, jobs=1, cache_dir="") as session:
            with pytest.raises(ValueError):
                session.figure("fig6", nrh=64, max_seeds=5)

    def test_huge_target_never_escalates(self):
        spec = ExperimentSpec(seeds=(0, 1), **BASE)
        with Session(spec, jobs=1, cache_dir="") as session:
            figure = session.figure("fig6", nrh=64, target_ci=1e9)
            baseline_runs = session.runs_executed
        with Session(spec, jobs=1, cache_dir="") as plain:
            reference = plain.figure("fig6", nrh=64)
            assert plain.runs_executed == baseline_runs
        assert figure.as_dict() == reference.as_dict()
        for series in figure.series.values():
            assert all(cell.n == 2 for cell in series.stats)

    def test_escalates_only_wide_cells_within_budget(self):
        # graphene is deterministic across seeds at this scale (std == 0),
        # so its cells can never be wide; para/rfm are seed-sensitive.
        spec = ExperimentSpec(
            seeds=(0, 1),
            **dict(BASE, mechanisms=("para", "graphene", "rfm")),
        )
        with Session(spec, jobs=1, cache_dir="") as session:
            figure = session.figure("fig6", nrh=64,
                                    target_ci=0.0, max_seeds=4)
            adaptive_runs = session.runs_executed
        with Session(spec, jobs=1, cache_dir="") as plain:
            plain.figure("fig6", nrh=64)
            base_runs = plain.runs_executed
        counts = {
            (label, x): series.stats[index].n
            for label, series in figure.series.items()
            for index, x in enumerate(figure.x_values)
        }
        # target_ci=0.0 makes every cell with seed-to-seed variance wide,
        # so those cells climb to the max_seeds budget; zero-variance
        # cells (ci95 == 0.0 is not > 0.0) never escalate and stay at the
        # base batch's two samples.
        assert set(counts.values()) <= {2, 4}
        escalated = {cell for cell, n in counts.items() if n == 4}
        assert escalated, "expected at least one seed-sensitive cell"
        for (label, x), n in counts.items():
            series = figure.series[label]
            index = figure.x_values.index(x)
            if n == 2:
                assert series.stats[index].ci95 == 0.0
        # Escalation rounds recomputed only the wide cells' runs — far
        # fewer than re-running the whole base grid per extra seed.
        assert adaptive_runs > base_runs
        assert adaptive_runs < 2 * base_runs

    def test_escalation_plan_narrows_to_wide_series(self):
        with Session(MULTI, jobs=1, cache_dir="") as session:
            runner = session.runner
            plan = runner.figure_plan("fig6", nrh=64)
            escalation = runner.escalation_plan(
                plan, [("para+BH", "geomean")]
            )
            mechanisms = {run[1] for run in escalation.runs}
            assert mechanisms == {"para"}
            assert list(escalation.meta["series"]) == ["para+BH"]


@pytest.mark.stats_smoke
def test_stats_smoke_multi_seed_point():
    """One multi-seed figure point through the statistics path."""

    spec = ExperimentSpec(seeds=(0, 1), **dict(BASE, mechanisms=("para",)))
    with Session(spec, jobs=2, cache_dir="") as session:
        figure = session.figure("fig6", nrh=64)
    series = figure.get("para+BH")
    assert series.stats and all(cell.n == 2 for cell in series.stats)
    assert all(math.isfinite(cell.ci95) for cell in series.stats)

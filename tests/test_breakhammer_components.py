"""Tests for BreakHammer's sub-mechanisms: scores, suspect detection, throttling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scores import DualCounterSet, ScoreCounterSet
from repro.core.suspect import SuspectDetector
from repro.core.throttler import QuotaPolicy, Throttler


class TestScoreCounterSet:
    def test_add_and_mean(self):
        counters = ScoreCounterSet(4)
        counters.add(0, 2.0)
        counters.add(1, 6.0)
        assert counters.get(0) == 2.0
        assert counters.mean() == 2.0
        assert counters.total() == 8.0

    def test_reset(self):
        counters = ScoreCounterSet(2)
        counters.add(1, 5.0)
        counters.reset()
        assert counters.total() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoreCounterSet(0)
        with pytest.raises(ValueError):
            ScoreCounterSet(2, scores=[1.0])


class TestDualCounterSet:
    def test_add_trains_both_sets(self):
        dual = DualCounterSet(2)
        dual.add(0, 3.0)
        assert dual.active.get(0) == 3.0
        assert dual.training.get(0) == 3.0

    def test_rotate_resets_active_and_swaps(self):
        """Fig. 4: the freshly-active set keeps last window's training."""

        dual = DualCounterSet(2)
        dual.add(0, 3.0)          # window 1
        dual.rotate()             # end of window 1
        # The new active set still remembers the 3.0 trained last window.
        assert dual.score_of(0) == 3.0
        dual.add(0, 1.0)          # window 2
        assert dual.score_of(0) == 4.0
        dual.rotate()             # end of window 2
        # Now only window 2's contribution remains.
        assert dual.score_of(0) == 1.0

    def test_continuous_monitoring_has_no_blind_spot(self):
        dual = DualCounterSet(1)
        for _ in range(5):
            dual.add(0, 1.0)
            dual.rotate()
            # Immediately after a rotation the score is never zero because
            # the other set was training during the previous window.
            assert dual.score_of(0) >= 1.0

    def test_bounds_checking(self):
        dual = DualCounterSet(2)
        with pytest.raises(IndexError):
            dual.add(5, 1.0)
        with pytest.raises(ValueError):
            dual.add(0, -1.0)

    def test_snapshot(self):
        dual = DualCounterSet(2)
        dual.add(1, 2.0)
        snap = dual.snapshot()
        assert snap["active_scores"][1] == 2.0
        assert snap["rotations"] == 0

    @given(amounts=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.floats(min_value=0, max_value=10)),
        max_size=50))
    def test_active_score_never_exceeds_total_added(self, amounts):
        """Property: a thread's visible score never exceeds what was added."""

        dual = DualCounterSet(4)
        totals = [0.0] * 4
        for thread, amount in amounts:
            dual.add(thread, amount)
            totals[thread] += amount
        for thread in range(4):
            assert dual.score_of(thread) <= totals[thread] + 1e-9


class TestSuspectDetector:
    def test_paper_algorithm_marks_clear_outlier(self):
        detector = SuspectDetector(threat_threshold=32, outlier_threshold=0.65)
        decision = detector.evaluate([200.0, 10.0, 12.0, 8.0])
        assert decision.suspects == (0,)
        assert decision.is_suspect(0)
        assert not decision.is_suspect(1)

    def test_low_scores_never_suspect(self):
        """Line 11 of Alg. 1: a thread below TH_threat is never marked."""

        detector = SuspectDetector(threat_threshold=32, outlier_threshold=0.65)
        decision = detector.evaluate([30.0, 0.0, 0.0, 0.0])
        assert decision.suspects == ()

    def test_non_outlier_high_scores_not_suspect(self):
        """Line 15: equal high scores are the norm, not outliers."""

        detector = SuspectDetector(threat_threshold=32, outlier_threshold=0.65)
        decision = detector.evaluate([100.0, 100.0, 100.0, 100.0])
        assert decision.suspects == ()

    def test_multiple_suspects_possible(self):
        detector = SuspectDetector(threat_threshold=10, outlier_threshold=0.1)
        decision = detector.evaluate([100.0, 95.0, 1.0, 1.0])
        assert set(decision.suspects) == {0, 1}

    def test_max_allowed_deviation_definition(self):
        detector = SuspectDetector(threat_threshold=0, outlier_threshold=0.65)
        decision = detector.evaluate([10.0, 10.0])
        assert decision.max_allowed_deviation == pytest.approx(16.5)

    def test_minimum_detectable_score(self):
        detector = SuspectDetector(threat_threshold=32, outlier_threshold=0.65)
        assert detector.minimum_detectable_score([0.0, 0.0]) == 32
        assert detector.minimum_detectable_score([100.0, 100.0]) == pytest.approx(165.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SuspectDetector(threat_threshold=-1)
        with pytest.raises(ValueError):
            SuspectDetector(outlier_threshold=-0.1)
        with pytest.raises(ValueError):
            SuspectDetector().evaluate([])

    @settings(max_examples=100, deadline=None)
    @given(scores=st.lists(st.floats(min_value=0, max_value=1000),
                           min_size=2, max_size=8),
           threat=st.floats(min_value=0, max_value=100),
           outlier=st.floats(min_value=0, max_value=2))
    def test_suspects_always_satisfy_both_conditions(self, scores, threat,
                                                     outlier):
        """Property: every marked suspect passes both Alg. 1 checks."""

        detector = SuspectDetector(threat, outlier)
        decision = detector.evaluate(scores)
        mean = sum(scores) / len(scores)
        for thread in decision.suspects:
            assert scores[thread] >= threat
            assert scores[thread] > (1 + outlier) * mean


class TestThrottler:
    def make(self, **kwargs):
        return Throttler(num_threads=4, full_quota=64,
                         policy=QuotaPolicy(p_oldsuspect=1, p_newsuspect=10),
                         **kwargs)

    def test_new_suspect_divides_quota(self):
        throttler = self.make()
        assert throttler.mark_suspect(2) == 6  # 64 // 10
        assert throttler.is_throttled(2)
        assert not throttler.is_throttled(0)

    def test_repeat_suspect_subtracts(self):
        throttler = self.make()
        throttler.mark_suspect(2)
        throttler.end_window()      # becomes recent_suspect
        assert throttler.mark_suspect(2) == 5  # 6 - 1
        throttler.end_window()
        assert throttler.mark_suspect(2) == 4

    def test_quota_never_negative(self):
        throttler = Throttler(num_threads=1, full_quota=2,
                              policy=QuotaPolicy(p_oldsuspect=5, p_newsuspect=2))
        throttler.mark_suspect(0)
        throttler.end_window()
        assert throttler.mark_suspect(0) == 0

    def test_clean_window_restores_full_quota(self):
        throttler = self.make()
        throttler.mark_suspect(2)
        throttler.end_window()      # window 1: still recent suspect
        throttler.end_window()      # window 2: stayed clean -> restore
        assert throttler.quota_of(2) == 64
        assert not throttler.is_throttled(2)
        assert throttler.quota_restorations >= 1

    def test_quota_reduced_once_per_window(self):
        throttler = self.make()
        throttler.mark_suspect(2)
        throttler.mark_suspect(2)
        throttler.mark_suspect(2)
        assert throttler.quota_of(2) == 6  # not divided three times

    def test_apply_callback_invoked(self):
        calls = []
        throttler = self.make(apply_quota=lambda t, q: calls.append((t, q)))
        throttler.mark_suspect(1)
        throttler.end_window()
        throttler.end_window()
        assert (1, 6) in calls
        assert (1, 64) in calls

    def test_windows_as_suspect_counter(self):
        throttler = self.make()
        throttler.mark_suspect(3)
        throttler.end_window()
        throttler.mark_suspect(3)
        throttler.end_window()
        snap = throttler.snapshot()
        assert snap["threads"][3]["windows_as_suspect"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Throttler(num_threads=0, full_quota=4)
        with pytest.raises(ValueError):
            Throttler(num_threads=1, full_quota=0)
        with pytest.raises(ValueError):
            QuotaPolicy(p_newsuspect=0)
        with pytest.raises(ValueError):
            QuotaPolicy(p_oldsuspect=-1)

    @settings(max_examples=60, deadline=None)
    @given(events=st.lists(st.tuples(st.booleans(), st.booleans()),
                           max_size=30))
    def test_quota_always_within_bounds(self, events):
        """Property: quotas stay within [0, full] under any suspect pattern."""

        throttler = self.make()
        for mark0, mark1 in events:
            if mark0:
                throttler.mark_suspect(0)
            if mark1:
                throttler.mark_suspect(1)
            throttler.end_window()
            for thread in range(4):
                assert 0 <= throttler.quota_of(thread) <= 64

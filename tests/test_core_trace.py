"""Tests for traces and the trace-driven core model."""

import pytest

from repro.cpu.core_model import Core, CoreConfig
from repro.cpu.trace import Trace, TraceCursor, TraceEntry
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import DeviceConfig


class TestTraceEntry:
    def test_instruction_count(self):
        assert TraceEntry(5, 0x100).instructions == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceEntry(-1, 0)
        with pytest.raises(ValueError):
            TraceEntry(0, -4)


class TestTrace:
    def make(self):
        return Trace([
            TraceEntry(2, 0, False),
            TraceEntry(0, 64, True),
            TraceEntry(1, 128, False, bypass_cache=True),
        ], name="demo")

    def test_lengths_and_totals(self):
        trace = self.make()
        assert len(trace) == 3
        assert trace.memory_accesses == 3
        assert trace.total_instructions == 2 + 1 + 0 + 1 + 1 + 1
        assert trace.write_fraction == pytest.approx(1 / 3)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace([], name="empty")

    def test_round_trip_through_text_format(self, tmp_path):
        trace = self.make()
        path = tmp_path / "trace.txt"
        trace.dump(path)
        loaded = Trace.load(path)
        assert len(loaded) == 3
        assert loaded[1].is_write
        assert loaded[2].bypass_cache
        assert loaded[0].address == 0

    def test_parse_skips_comments_and_blanks(self):
        text = ["# header", "", "3 128 R", "0 0x40 W"]
        trace = Trace.parse(text)
        assert len(trace) == 2
        assert trace[1].address == 0x40
        assert trace[1].is_write

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            Trace.parse(["garbage"])

    def test_characterize_counts_rows(self):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.ROW_INTERLEAVED)
        address = mapper.address_for_row(0, 0, 0, 0, 3)
        entries = [TraceEntry(0, address) for _ in range(100)]
        trace = Trace(entries, name="hot")
        stats = trace.characterize(mapper)
        assert stats.distinct_rows == 1
        assert stats.rows_over_64 == 1
        assert stats.rows_over_512 == 0
        assert stats.rbmpki == pytest.approx(1000.0)


class TestColumnarStorage:
    """The array-backed columns must agree entry-for-entry with the
    object/text views, including derived statistics."""

    def make(self) -> Trace:
        entries = [
            TraceEntry(2, 0, False),
            TraceEntry(0, 64, True),
            TraceEntry(1, 128, False, bypass_cache=True),
            TraceEntry(7, 0x1000, True, bypass_cache=True),
        ]
        return Trace(entries, name="columnar", loop=False)

    def test_from_columns_matches_entry_construction(self):
        reference = self.make()
        bubbles, addresses, flags = reference.columns
        rebuilt = Trace.from_columns(bubbles, addresses, flags,
                                     name="columnar", loop=False)
        assert list(rebuilt) == list(reference)
        assert rebuilt.total_instructions == reference.total_instructions
        assert rebuilt.write_fraction == reference.write_fraction

    def test_text_and_columnar_formats_agree(self, tmp_path):
        trace = self.make()
        text_path = tmp_path / "trace.txt"
        binary_path = tmp_path / "trace.rtrc"
        trace.dump(text_path)
        trace.dump_columnar(binary_path)
        from_text = Trace.load(text_path, name="columnar", loop=False)
        from_binary = Trace.load_columnar(binary_path)
        assert list(from_text) == list(from_binary) == list(trace)
        assert from_binary.name == "columnar"
        assert from_binary.loop is False
        assert from_text.write_fraction == from_binary.write_fraction \
            == pytest.approx(0.5)

    def test_characterization_matches_across_formats(self, tmp_path):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.ROW_INTERLEAVED)
        address = mapper.address_for_row(0, 0, 0, 0, 3)
        trace = Trace([TraceEntry(i % 3, address, i % 2 == 0)
                       for i in range(100)], name="hot")
        path = tmp_path / "hot.rtrc"
        trace.dump_columnar(path)
        reloaded = Trace.load_columnar(path)
        assert reloaded.characterize(mapper).as_dict() == \
            trace.characterize(mapper).as_dict()
        assert reloaded.characterize(mapper, window_entries=10).as_dict() == \
            trace.characterize(mapper, window_entries=10).as_dict()

    def test_pickle_ships_columns_and_round_trips(self):
        import pickle

        trace = self.make()
        state = trace.__getstate__()
        assert set(state) == {"name", "loop", "bubbles", "addresses", "flags"}
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.name == trace.name
        assert clone.loop == trace.loop
        assert list(clone) == list(trace)

    def test_generator_input_materialised_once(self):
        entries = [TraceEntry(1, 64), TraceEntry(0, 128, True)]
        trace = Trace(entry for entry in entries)
        assert len(trace) == 2
        assert list(trace) == entries

    def test_columnar_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"not a trace")
        with pytest.raises(ValueError):
            Trace.load_columnar(path)

    def test_load_columnar_byteswaps_foreign_endianness(self, tmp_path):
        import struct
        from array import array

        trace = self.make()
        path = tmp_path / "foreign.rtrc"
        trace.dump_columnar(path)
        # Rewrite the file as a machine of the opposite endianness would
        # have: flip the header marker and byte-swap the numeric columns.
        data = bytearray(path.read_bytes())
        data[6] ^= 1
        (name_length,) = struct.unpack_from("<H", data, 7)
        offset = 9 + name_length + 8
        count = len(trace)
        for typecode in ("q", "Q"):
            column = array(typecode)
            width = column.itemsize * count
            column.frombytes(bytes(data[offset:offset + width]))
            column.byteswap()
            data[offset:offset + width] = column.tobytes()
            offset += width
        path.write_bytes(bytes(data))
        assert list(Trace.load_columnar(path)) == list(trace)

    def test_from_columns_copies_buffers(self):
        from array import array

        bubbles = array("q", [1, 2])
        addresses = array("Q", [0, 64])
        flags = bytearray(b"\x00\x01")
        trace = Trace.from_columns(bubbles, addresses, flags)
        bubbles.append(9)
        flags[0] = 0xFF
        assert len(trace) == 2
        assert trace[0].is_write is False

    def test_from_columns_validates(self):
        with pytest.raises(ValueError):
            Trace.from_columns([1, 2], [0], b"\x00\x00")  # ragged columns
        with pytest.raises(ValueError):
            Trace.from_columns([], [], b"")  # empty trace
        with pytest.raises(ValueError):
            Trace.from_columns([-1], [0], b"\x00")  # negative bubble

    def test_parse_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            Trace.parse(["-1 64 R"])


class TestTraceCursor:
    def test_looping_cursor_wraps(self):
        trace = Trace([TraceEntry(0, 0), TraceEntry(0, 64)], loop=True)
        cursor = trace.cursor()
        for _ in range(5):
            assert cursor.advance() is not None
        assert cursor.wraps == 2
        assert not cursor.exhausted

    def test_non_looping_cursor_exhausts(self):
        trace = Trace([TraceEntry(0, 0)], loop=False)
        cursor = trace.cursor()
        assert cursor.advance() is not None
        assert cursor.advance() is None
        assert cursor.exhausted


class AlwaysAccept:
    """A memory hierarchy stub that accepts everything instantly."""

    def __init__(self):
        self.sent = []

    def __call__(self, core, entry):
        self.sent.append(entry)
        return True


class TestCoreModel:
    def test_bubbles_retire_at_issue_width(self):
        trace = Trace([TraceEntry(10, 0)], loop=False)
        sink = AlwaysAccept()
        core = Core(0, trace, CoreConfig(issue_width=4), send=sink)
        issued = core.tick(0)
        assert issued == 4
        assert core.stats.retired_instructions == 4

    def test_memory_access_sent_and_load_tracked(self):
        trace = Trace([TraceEntry(0, 0x40)], loop=False)
        sink = AlwaysAccept()
        core = Core(0, trace, send=sink)
        core.tick(0)
        assert len(sink.sent) == 1
        assert core.outstanding_loads == 1
        core.on_data_returned(5)
        assert core.outstanding_loads == 0
        assert core.stats.retired_memory_accesses == 1

    def test_store_retires_immediately(self):
        trace = Trace([TraceEntry(0, 0x40, True)], loop=False)
        core = Core(0, trace, send=AlwaysAccept())
        core.tick(0)
        assert core.outstanding_loads == 0
        assert core.stats.issued_stores == 1
        assert core.stats.retired_instructions == 1

    def test_rejection_stalls_core(self):
        trace = Trace([TraceEntry(0, 0x40)], loop=True)
        core = Core(0, trace, send=lambda c, e: False)
        core.tick(0)
        assert core.stats.stall_cycles_reject == 1
        assert core.outstanding_loads == 0
        # Retrying eventually succeeds once the hierarchy accepts (the
        # looping trace lets the core issue up to issue_width loads).
        core.send = AlwaysAccept()
        core.tick(1)
        assert core.outstanding_loads >= 1

    def test_window_limit_stalls_core(self):
        trace = Trace([TraceEntry(0, 64 * i) for i in range(300)], loop=True)
        core = Core(0, trace, CoreConfig(instruction_window=2), send=AlwaysAccept())
        for cycle in range(5):
            core.tick(cycle)
        assert core.outstanding_loads == 2
        assert core.stats.stall_cycles_window >= 1

    def test_non_looping_trace_finishes(self):
        trace = Trace([TraceEntry(0, 0x40)], loop=False)
        core = Core(0, trace, send=AlwaysAccept())
        core.tick(0)
        core.tick(1)
        assert core.finished
        assert core.finish_cycle in (0, 1)
        assert core.tick(2) == 0  # a finished core issues nothing

    def test_ipc_and_reached(self):
        trace = Trace([TraceEntry(3, 0x40)], loop=True)
        core = Core(0, trace, send=AlwaysAccept())
        for cycle in range(10):
            core.tick(cycle)
        assert core.ipc(10) > 0
        assert core.reached(1)
        assert not core.reached(10 ** 9)
        assert core.ipc(0) == 0.0

    def test_data_return_without_outstanding_load_raises(self):
        trace = Trace([TraceEntry(0, 0)], loop=True)
        core = Core(0, trace, send=AlwaysAccept())
        with pytest.raises(RuntimeError):
            core.on_data_returned(0)

    def test_missing_send_function_raises(self):
        trace = Trace([TraceEntry(0, 0)], loop=True)
        core = Core(0, trace)
        with pytest.raises(RuntimeError):
            core.tick(0)

    def test_snapshot_contains_progress(self):
        trace = Trace([TraceEntry(1, 0)], loop=True)
        core = Core(3, trace, send=AlwaysAccept())
        core.tick(0)
        snap = core.snapshot()
        assert snap["core_id"] == 3
        assert snap["retired_instructions"] >= 1

"""Tests for traces and the trace-driven core model."""

import pytest

from repro.cpu.core_model import Core, CoreConfig
from repro.cpu.trace import Trace, TraceCursor, TraceEntry
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import DeviceConfig


class TestTraceEntry:
    def test_instruction_count(self):
        assert TraceEntry(5, 0x100).instructions == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceEntry(-1, 0)
        with pytest.raises(ValueError):
            TraceEntry(0, -4)


class TestTrace:
    def make(self):
        return Trace([
            TraceEntry(2, 0, False),
            TraceEntry(0, 64, True),
            TraceEntry(1, 128, False, bypass_cache=True),
        ], name="demo")

    def test_lengths_and_totals(self):
        trace = self.make()
        assert len(trace) == 3
        assert trace.memory_accesses == 3
        assert trace.total_instructions == 2 + 1 + 0 + 1 + 1 + 1
        assert trace.write_fraction == pytest.approx(1 / 3)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace([], name="empty")

    def test_round_trip_through_text_format(self, tmp_path):
        trace = self.make()
        path = tmp_path / "trace.txt"
        trace.dump(path)
        loaded = Trace.load(path)
        assert len(loaded) == 3
        assert loaded[1].is_write
        assert loaded[2].bypass_cache
        assert loaded[0].address == 0

    def test_parse_skips_comments_and_blanks(self):
        text = ["# header", "", "3 128 R", "0 0x40 W"]
        trace = Trace.parse(text)
        assert len(trace) == 2
        assert trace[1].address == 0x40
        assert trace[1].is_write

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            Trace.parse(["garbage"])

    def test_characterize_counts_rows(self):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.ROW_INTERLEAVED)
        address = mapper.address_for_row(0, 0, 0, 0, 3)
        entries = [TraceEntry(0, address) for _ in range(100)]
        trace = Trace(entries, name="hot")
        stats = trace.characterize(mapper)
        assert stats.distinct_rows == 1
        assert stats.rows_over_64 == 1
        assert stats.rows_over_512 == 0
        assert stats.rbmpki == pytest.approx(1000.0)


class TestTraceCursor:
    def test_looping_cursor_wraps(self):
        trace = Trace([TraceEntry(0, 0), TraceEntry(0, 64)], loop=True)
        cursor = trace.cursor()
        for _ in range(5):
            assert cursor.advance() is not None
        assert cursor.wraps == 2
        assert not cursor.exhausted

    def test_non_looping_cursor_exhausts(self):
        trace = Trace([TraceEntry(0, 0)], loop=False)
        cursor = trace.cursor()
        assert cursor.advance() is not None
        assert cursor.advance() is None
        assert cursor.exhausted


class AlwaysAccept:
    """A memory hierarchy stub that accepts everything instantly."""

    def __init__(self):
        self.sent = []

    def __call__(self, core, entry):
        self.sent.append(entry)
        return True


class TestCoreModel:
    def test_bubbles_retire_at_issue_width(self):
        trace = Trace([TraceEntry(10, 0)], loop=False)
        sink = AlwaysAccept()
        core = Core(0, trace, CoreConfig(issue_width=4), send=sink)
        issued = core.tick(0)
        assert issued == 4
        assert core.stats.retired_instructions == 4

    def test_memory_access_sent_and_load_tracked(self):
        trace = Trace([TraceEntry(0, 0x40)], loop=False)
        sink = AlwaysAccept()
        core = Core(0, trace, send=sink)
        core.tick(0)
        assert len(sink.sent) == 1
        assert core.outstanding_loads == 1
        core.on_data_returned(5)
        assert core.outstanding_loads == 0
        assert core.stats.retired_memory_accesses == 1

    def test_store_retires_immediately(self):
        trace = Trace([TraceEntry(0, 0x40, True)], loop=False)
        core = Core(0, trace, send=AlwaysAccept())
        core.tick(0)
        assert core.outstanding_loads == 0
        assert core.stats.issued_stores == 1
        assert core.stats.retired_instructions == 1

    def test_rejection_stalls_core(self):
        trace = Trace([TraceEntry(0, 0x40)], loop=True)
        core = Core(0, trace, send=lambda c, e: False)
        core.tick(0)
        assert core.stats.stall_cycles_reject == 1
        assert core.outstanding_loads == 0
        # Retrying eventually succeeds once the hierarchy accepts (the
        # looping trace lets the core issue up to issue_width loads).
        core.send = AlwaysAccept()
        core.tick(1)
        assert core.outstanding_loads >= 1

    def test_window_limit_stalls_core(self):
        trace = Trace([TraceEntry(0, 64 * i) for i in range(300)], loop=True)
        core = Core(0, trace, CoreConfig(instruction_window=2), send=AlwaysAccept())
        for cycle in range(5):
            core.tick(cycle)
        assert core.outstanding_loads == 2
        assert core.stats.stall_cycles_window >= 1

    def test_non_looping_trace_finishes(self):
        trace = Trace([TraceEntry(0, 0x40)], loop=False)
        core = Core(0, trace, send=AlwaysAccept())
        core.tick(0)
        core.tick(1)
        assert core.finished
        assert core.finish_cycle in (0, 1)
        assert core.tick(2) == 0  # a finished core issues nothing

    def test_ipc_and_reached(self):
        trace = Trace([TraceEntry(3, 0x40)], loop=True)
        core = Core(0, trace, send=AlwaysAccept())
        for cycle in range(10):
            core.tick(cycle)
        assert core.ipc(10) > 0
        assert core.reached(1)
        assert not core.reached(10 ** 9)
        assert core.ipc(0) == 0.0

    def test_data_return_without_outstanding_load_raises(self):
        trace = Trace([TraceEntry(0, 0)], loop=True)
        core = Core(0, trace, send=AlwaysAccept())
        with pytest.raises(RuntimeError):
            core.on_data_returned(0)

    def test_missing_send_function_raises(self):
        trace = Trace([TraceEntry(0, 0)], loop=True)
        core = Core(0, trace)
        with pytest.raises(RuntimeError):
            core.tick(0)

    def test_snapshot_contains_progress(self):
        trace = Trace([TraceEntry(1, 0)], loop=True)
        core = Core(3, trace, send=AlwaysAccept())
        core.tick(0)
        snap = core.snapshot()
        assert snap["core_id"] == 3
        assert snap["retired_instructions"] >= 1

"""ExperimentSpec validation, serialisation, and execution-knob precedence.

The precedence contract (satellite of the repro.api redesign): every
execution knob resolves in exactly one place,
:func:`repro.api.session.resolve_execution`, and **explicit spec/session
values always beat the ``REPRO_*`` environment variables**.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.experiments import HarnessConfig
from repro.analysis.runcache import CACHE_DIR_ENV
from repro.api import (
    ExperimentSpec,
    RunPoint,
    Session,
    load_spec,
    resolve_engine,
    resolve_execution,
)
from repro.sim.config import ENGINE_ENV
from repro.analysis.executor import BACKEND_ENV, JOBS_ENV, resolve_backend


TINY = ExperimentSpec.tiny()


class TestValidation:
    def test_defaults_are_valid(self):
        ExperimentSpec()

    @pytest.mark.parametrize("overrides", [
        dict(sim_cycles=0),
        dict(entries_per_core=-1),
        dict(engine="warp"),
        dict(nrh_sweep=()),
        dict(nrh_sweep=(0,)),
        dict(seeds=()),
        dict(mechanisms=("para", "quantum_shield")),
        dict(attack_mixes=("MMLQ",)),          # unknown letter
        dict(attack_mixes=("MMA",)),           # wrong core count
        dict(attack_mixes=("MMLL",)),          # no attacker
        dict(outlier_threshold=0.0),
        dict(threat_threshold=-2.0),
    ])
    def test_invalid_specs_fail_up_front(self, overrides):
        with pytest.raises(ValueError):
            ExperimentSpec(**overrides)

    def test_sequences_coerced_to_tuples(self):
        spec = ExperimentSpec(nrh_sweep=[64, 128], mechanisms=["para"],
                              attack_mixes=["MMLA"], benign_mixes=["MMLL"],
                              seeds=[0, 1])
        assert spec.nrh_sweep == (64, 128)
        assert isinstance(hash(spec), int)  # frozen + hashable


class TestFingerprint:
    def test_equal_specs_equal_fingerprints(self):
        assert ExperimentSpec.tiny().fingerprint() == \
            ExperimentSpec.tiny().fingerprint()

    def test_unpinned_engine_digests_as_fast(self):
        assert ExperimentSpec.tiny().fingerprint() == \
            ExperimentSpec.tiny(engine="fast").fingerprint()
        assert ExperimentSpec.tiny().fingerprint() != \
            ExperimentSpec.tiny(engine="cycle").fingerprint()

    def test_scale_lands_in_new_namespace(self):
        assert ExperimentSpec.tiny().fingerprint() != \
            ExperimentSpec.tiny(sim_cycles=1_600).fingerprint()

    def test_session_fingerprint_matches_legacy_runner(self, tmp_path):
        """One spec -> one RunCache namespace, however it is executed."""

        with Session(TINY, jobs=1, cache_dir="") as serial, \
                Session(TINY, jobs=2, cache_dir=str(tmp_path)) as parallel:
            assert serial.fingerprint == parallel.fingerprint


class TestHarnessBridge:
    def test_round_trip_through_harness_config(self):
        spec = ExperimentSpec.fast(engine="cycle")
        config = HarnessConfig.from_spec(spec, jobs=3, cache_dir="/tmp/x")
        assert config.jobs == 3 and config.cache_dir == "/tmp/x"
        assert config.to_spec() == spec

    def test_unresolved_engine_rejected(self):
        with pytest.raises(ValueError):
            HarnessConfig.from_spec(ExperimentSpec.tiny())

    def test_legacy_profiles_match_spec_profiles(self):
        # HarnessConfig always pins an engine; spec profiles leave it
        # unpinned, so compare the resolved (default-engine) forms.
        assert HarnessConfig().to_spec() == ExperimentSpec.full().resolved("fast")
        assert HarnessConfig.fast().to_spec() == \
            ExperimentSpec.fast().resolved("fast")
        assert HarnessConfig.smoke().to_spec() == \
            ExperimentSpec.smoke().resolved("fast")


class TestSerialisation:
    def test_dict_round_trip(self):
        spec = ExperimentSpec.smoke(engine="cycle")
        assert ExperimentSpec.from_dict(spec.as_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec"):
            ExperimentSpec.from_dict({"warp_factor": 9})

    def test_load_toml(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'profile = "tiny"\n'
            'figures = ["fig6", "fig12"]\n'
            '[spec]\n'
            'sim_cycles = 1200\n'
            'mechanisms = ["para", "rfm"]\n'
            '[execution]\n'
            'jobs = 2\n'
            'cache_dir = ""\n',
            encoding="utf-8",
        )
        spec_file = load_spec(path)
        assert spec_file.spec == ExperimentSpec.tiny(
            sim_cycles=1200, mechanisms=("para", "rfm"))
        assert spec_file.figures == ("fig6", "fig12")
        assert spec_file.jobs == 2
        assert spec_file.cache_dir == ""

    def test_load_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        spec = ExperimentSpec.tiny()
        path.write_text(__import__("json").dumps(spec.as_dict()),
                        encoding="utf-8")
        assert load_spec(path).spec == spec

    def test_unknown_execution_keys_rejected(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text('profile = "tiny"\n[execution]\nthreads = 4\n',
                        encoding="utf-8")
        with pytest.raises(ValueError, match="execution"):
            load_spec(path)

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "sweep.yaml"
        path.write_text("spec: {}", encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported spec format"):
            load_spec(path)


class TestRunPoint:
    def test_run_spec_view(self):
        point = RunPoint("MMLA", "para", 64, True, seed=2)
        assert point.as_run_spec() == ("MMLA", "para", 64, True)


class TestExecutionPrecedence:
    """Explicit ExperimentSpec / Session values always beat REPRO_* vars."""

    def test_spec_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "fast")
        plan = resolve_execution(ExperimentSpec.tiny(engine="cycle"))
        assert plan.engine == "cycle"

    def test_argument_engine_beats_spec_and_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "fast")
        plan = resolve_execution(ExperimentSpec.tiny(engine="fast"),
                                 engine="cycle")
        assert plan.engine == "cycle"

    def test_unpinned_engine_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "cycle")
        assert resolve_execution(ExperimentSpec.tiny()).engine == "cycle"
        monkeypatch.delenv(ENGINE_ENV)
        assert resolve_execution(ExperimentSpec.tiny()).engine == "fast"

    def test_garbage_env_engine_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "warp")
        with pytest.raises(ValueError):
            resolve_engine(None)

    def test_explicit_jobs_beat_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_execution(TINY, jobs=1).jobs == 1
        assert resolve_execution(TINY).jobs == 8

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cluster")
        assert resolve_execution(TINY, backend="local").backend == "local"
        assert resolve_execution(TINY).backend == "cluster"
        monkeypatch.delenv(BACKEND_ENV)
        assert resolve_execution(TINY).backend == "local"

    def test_garbage_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "mainframe")
        with pytest.raises(ValueError, match="backend"):
            resolve_backend(None)
        monkeypatch.delenv(BACKEND_ENV)
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("mainframe")

    def test_spec_file_execution_backend_keys(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'profile = "tiny"\n'
            '[execution]\n'
            'backend = "cluster"\n'
            'broker = "unix:/tmp/b.sock"\n'
            'workers = 2\n',
            encoding="utf-8",
        )
        spec_file = load_spec(path)
        assert spec_file.backend == "cluster"
        assert spec_file.broker == "unix:/tmp/b.sock"
        assert spec_file.workers == 2

    def test_spec_file_negative_workers_rejected(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text('profile = "tiny"\n[execution]\nworkers = -1\n',
                        encoding="utf-8")
        with pytest.raises(ValueError, match="workers"):
            load_spec(path)

    def test_explicit_cache_dir_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        explicit = str(tmp_path / "explicit")
        assert resolve_execution(TINY, cache_dir=explicit).cache_dir \
            == explicit
        # "" force-disables even with the variable exported.
        assert resolve_execution(TINY, cache_dir="").cache_dir is None
        assert resolve_execution(TINY).cache_dir == str(tmp_path / "env")

    def test_session_applies_resolved_plan(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENGINE_ENV, "fast")
        monkeypatch.setenv(JOBS_ENV, "4")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        spec = ExperimentSpec.tiny(engine="cycle")
        with Session(spec, jobs=1, cache_dir="") as session:
            assert session.engine == "cycle"
            assert session.jobs == 1
            assert session.cache is None
            # The resolved engine lands in every run key (and cache key).
            key = session.runner.run_key("MMLA", "para", 64, False)
            assert key[-1] == "cycle"

    def test_session_defers_to_env_when_unpinned(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENGINE_ENV, "cycle")
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        with Session(ExperimentSpec.tiny()) as session:
            assert session.engine == "cycle"
            assert session.jobs == 1
            assert session.cache is not None
            assert str(session.cache.root) == str(tmp_path)

"""Tests for DRAM geometry and timing configuration."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dram.config import DeviceConfig, TimingParameters


class TestGeometry:
    def test_default_matches_paper_table1(self):
        cfg = DeviceConfig.ddr5_4800()
        assert cfg.channels == 1
        assert cfg.ranks == 2
        assert cfg.bank_groups == 8
        assert cfg.banks_per_group == 2
        assert cfg.rows_per_bank == 65536
        assert cfg.banks_per_rank == 16
        assert cfg.total_banks == 32

    def test_row_size_and_cachelines(self):
        cfg = DeviceConfig.ddr5_4800()
        assert cfg.row_size_bytes == 1024 * 8
        assert cfg.cachelines_per_row == cfg.row_size_bytes // 64
        assert cfg.columns_per_cacheline == 8

    def test_capacity_is_product_of_geometry(self):
        cfg = DeviceConfig.tiny()
        expected = (
            cfg.channels * cfg.ranks * cfg.banks_per_rank
            * cfg.rows_per_bank * cfg.row_size_bytes
        )
        assert cfg.capacity_bytes == expected

    def test_scaled_overrides_fields(self):
        cfg = DeviceConfig.ddr5_4800(rows_per_bank=128)
        assert cfg.rows_per_bank == 128
        assert cfg.ranks == 2  # untouched fields preserved

    def test_ddr4_preset_differs(self):
        ddr4 = DeviceConfig.ddr4_3200()
        ddr5 = DeviceConfig.ddr5_4800()
        assert ddr4.ranks == 1
        assert ddr4.timings.trefi > ddr5.timings.trefi
        assert ddr4.timings.refresh_window_ms == 64.0
        assert ddr5.timings.refresh_window_ms == 32.0

    def test_describe_contains_key_fields(self):
        desc = DeviceConfig.ddr5_4800().describe()
        assert desc["banks_total"] == 32
        assert desc["channels"] == 1
        assert "capacity_bytes" in desc


class TestTimingConversion:
    def test_cycles_are_ceiled_and_positive(self):
        timing = TimingParameters()
        cycles = timing.in_cycles()
        assert cycles.trcd == math.ceil(timing.trcd / timing.tck)
        assert cycles.trp >= 1
        assert cycles.tbl >= 1

    def test_trc_at_least_tras_plus_trp(self):
        cycles = TimingParameters().in_cycles()
        assert cycles.trc >= cycles.tras  # restore before close
        # DDR devices satisfy tRC ≈ tRAS + tRP.
        assert cycles.trc <= cycles.tras + cycles.trp + 2

    def test_refresh_window_much_longer_than_trefi(self):
        cycles = TimingParameters().in_cycles()
        assert cycles.refresh_window > cycles.trefi * 1000

    @given(factor=st.floats(min_value=1.0, max_value=16.0))
    def test_compression_scales_all_service_times(self, factor):
        base = TimingParameters()
        compressed = base.compressed(factor)
        assert compressed.tck == base.tck
        assert compressed.trc == pytest.approx(base.trc / factor)
        assert compressed.tfaw == pytest.approx(base.tfaw / factor)
        assert compressed.refresh_window_ms == pytest.approx(
            base.refresh_window_ms / factor
        )

    def test_compression_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            TimingParameters().compressed(0)

    def test_time_compressed_device_changes_name(self):
        cfg = DeviceConfig.ddr5_4800().time_compressed(4)
        assert "x4" in cfg.name
        assert cfg.timings.trc == pytest.approx(48.0 / 4)

    @given(
        trcd=st.floats(min_value=1.0, max_value=100.0),
        tck=st.floats(min_value=0.1, max_value=2.0),
    )
    def test_cycle_conversion_never_rounds_below_one(self, trcd, tck):
        timing = TimingParameters(tck=tck, trcd=trcd)
        assert timing.in_cycles().trcd >= 1
        assert timing.in_cycles().trcd >= trcd / tck - 1

"""Tests for the request queue and the scheduling policies."""

import pytest

from repro.controller.queues import RequestQueue
from repro.controller.request import MemoryRequest, RequestType, read_request
from repro.controller.scheduler import (
    FcfsScheduler,
    FrFcfsCapScheduler,
    FrFcfsScheduler,
    make_scheduler,
)
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig
from repro.dram.device import Channel


class TestRequestQueue:
    def test_push_and_capacity(self):
        queue = RequestQueue(capacity=2)
        assert queue.push(read_request(0))
        assert queue.push(read_request(64))
        assert queue.is_full
        assert not queue.push(read_request(128))
        assert queue.rejected_total == 1
        assert queue.peak_occupancy == 2

    def test_oldest_preserves_arrival_order(self):
        queue = RequestQueue()
        first = read_request(0, arrival_cycle=1)
        second = read_request(64, arrival_cycle=2)
        queue.push(first)
        queue.push(second)
        assert queue.oldest() is first

    def test_remove(self):
        queue = RequestQueue()
        req = read_request(0)
        queue.push(req)
        queue.remove(req)
        assert len(queue) == 0

    def test_thread_queries(self):
        queue = RequestQueue()
        queue.push(read_request(0, thread_id=1))
        queue.push(read_request(64, thread_id=2))
        queue.push(read_request(128, thread_id=1))
        assert queue.count_for_thread(1) == 2
        assert set(queue.threads_present()) == {1, 2}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RequestQueue(capacity=0)

    def test_for_bank_filters_by_coordinate(self):
        cfg = DeviceConfig.tiny()
        mapper = AddressMapper(cfg, MappingScheme.MOP)
        queue = RequestQueue()
        req = read_request(0)
        req.coordinate = mapper.map(0)
        queue.push(req)
        assert queue.for_bank(req.coordinate.bank_key) == [req]
        assert queue.for_bank(("x",)) == []


def _decorated_requests(channel, mapper, specs):
    """specs: list of (address, arrival) -> requests with coordinates."""

    requests = []
    for address, arrival in specs:
        req = MemoryRequest(address=address, kind=RequestType.READ,
                            arrival_cycle=arrival)
        req.coordinate = mapper.map(address)
        requests.append(req)
    return requests


@pytest.fixture()
def channel_and_mapper():
    cfg = DeviceConfig.tiny()
    return Channel(cfg), AddressMapper(cfg, MappingScheme.ROW_INTERLEAVED)


class TestSchedulers:
    def test_factory(self):
        assert isinstance(make_scheduler("frfcfs_cap"), FrFcfsCapScheduler)
        assert isinstance(make_scheduler("FR-FCFS"), FrFcfsScheduler)
        assert isinstance(make_scheduler("fcfs"), FcfsScheduler)
        with pytest.raises(ValueError):
            make_scheduler("nonsense")

    def test_fcfs_orders_by_age(self, channel_and_mapper):
        channel, mapper = channel_and_mapper
        reqs = _decorated_requests(channel, mapper, [(4096, 5), (0, 1)])
        ordered = FcfsScheduler().prioritize(reqs, channel, 10)
        assert ordered[0].request.arrival_cycle == 1

    def test_frfcfs_prefers_open_row(self, channel_and_mapper):
        channel, mapper = channel_and_mapper
        cfg = channel.config
        hit_addr = mapper.address_for_row(0, 0, 0, 0, 5, column=0)
        miss_addr = mapper.address_for_row(0, 0, 0, 0, 9, column=0)
        coord = mapper.map(hit_addr)
        channel.issue(Command(CommandType.ACT, rank=coord.rank,
                              bank_group=coord.bank_group, bank=coord.bank,
                              row=coord.row), 0)
        reqs = _decorated_requests(channel, mapper,
                                   [(miss_addr, 0), (hit_addr, 10)])
        decision = FrFcfsScheduler().choose(reqs, channel, 50)
        assert decision.is_row_hit
        assert decision.request.address == hit_addr

    def test_cap_limits_hit_reordering(self, channel_and_mapper):
        channel, mapper = channel_and_mapper
        scheduler = FrFcfsCapScheduler(cap=2)
        hit_addr = mapper.address_for_row(0, 0, 0, 0, 5, column=0)
        miss_addr = mapper.address_for_row(0, 0, 0, 0, 9, column=0)
        coord = mapper.map(hit_addr)
        channel.issue(Command(CommandType.ACT, rank=coord.rank,
                              bank_group=coord.bank_group, bank=coord.bank,
                              row=coord.row), 0)
        miss = _decorated_requests(channel, mapper, [(miss_addr, 0)])[0]
        hits = _decorated_requests(
            channel, mapper,
            [(hit_addr + 64 * i, 10 + i) for i in range(4)],
        )
        candidates = [miss] + hits
        served_hits = 0
        for _ in range(3):
            decision = scheduler.choose(candidates, channel, 100)
            if decision.is_row_hit:
                served_hits += 1
                scheduler.notify_served(decision)
                candidates.remove(decision.request)
            else:
                break
        # After `cap` hits bypassed the older miss, the miss must win.
        assert served_hits == 2
        final = scheduler.choose(candidates, channel, 101)
        assert not final.is_row_hit
        assert final.request is miss

    def test_cap_resets_after_miss_served(self, channel_and_mapper):
        channel, mapper = channel_and_mapper
        scheduler = FrFcfsCapScheduler(cap=1)
        addr = mapper.address_for_row(0, 0, 0, 0, 5, column=0)
        req = _decorated_requests(channel, mapper, [(addr, 0)])[0]
        from repro.controller.scheduler import SchedulerDecision
        scheduler.notify_served(SchedulerDecision(req, True, "row-hit"))
        assert scheduler._hits_over_misses[req.coordinate.bank_key] == 1
        scheduler.notify_served(SchedulerDecision(req, False, "miss"))
        assert scheduler._hits_over_misses[req.coordinate.bank_key] == 0

    def test_empty_candidates(self, channel_and_mapper):
        channel, _ = channel_and_mapper
        assert FrFcfsCapScheduler().choose([], channel, 0) is None
        assert FrFcfsCapScheduler().prioritize([], channel, 0) == []

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            FrFcfsCapScheduler(cap=0)


class TestMemoryRequest:
    def test_latency_and_completion_callback(self):
        fired = []
        req = read_request(64, thread_id=2, arrival_cycle=10)
        req.on_complete = lambda r, c: fired.append((r, c))
        req.complete(50)
        assert req.latency == 40
        assert fired == [(req, 50)]

    def test_write_request_flag(self):
        from repro.controller.request import write_request
        assert write_request(0).is_write
        assert not read_request(0).is_write

    def test_unique_ids(self):
        assert read_request(0).request_id != read_request(0).request_id

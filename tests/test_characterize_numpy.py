"""Numpy-backed trace characterisation is result-identical to the scalar path.

``Trace.characterize(backend="numpy")`` vectorises the Table 3 quantities
over the columnar address/bubble columns (one ``AddressMapper.map_row_ids``
pass + ``np.unique``); this suite pins bit-identical equality with the
reference scalar loop across mapping schemes, device geometries, window
prefixes, and every kind of generated workload trace.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

np = pytest.importorskip("numpy")

from repro.cpu.trace import Trace
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import DeviceConfig
from repro.workloads.attacker import AttackerConfig
from repro.workloads.characteristics import characterize_trace
from repro.workloads.mixes import make_mix

SCHEMES = (MappingScheme.MOP, MappingScheme.ROW_INTERLEAVED,
           MappingScheme.BANK_INTERLEAVED)


def random_trace(seed: int, entries: int = 4_000,
                 footprint: int = 1 << 26) -> Trace:
    rng = random.Random(seed)
    bubbles = [rng.randrange(0, 12) for _ in range(entries)]
    addresses = [rng.randrange(0, footprint) for _ in range(entries)]
    flags = [rng.randrange(0, 4) for _ in range(entries)]
    return Trace.from_columns(bubbles, addresses, flags,
                              name=f"rand{seed}")


def assert_backends_identical(trace: Trace, mapper: AddressMapper,
                              window_entries=None) -> None:
    scalar = trace.characterize(mapper, window_entries=window_entries,
                                backend="scalar")
    vectorised = trace.characterize(mapper, window_entries=window_entries,
                                    backend="numpy")
    assert dataclasses.asdict(scalar) == dataclasses.asdict(vectorised)


class TestRowIdBijection:
    """row_id / map_row_ids agree with the scalar row_key decomposition."""

    @pytest.mark.parametrize("scheme", SCHEMES, ids=[s.value for s in SCHEMES])
    @pytest.mark.parametrize("ranks", [1, 2])
    def test_packed_ids_match_scalar_decode(self, scheme, ranks):
        device = DeviceConfig.ddr5_4800(rows_per_bank=1024, ranks=ranks)
        mapper = AddressMapper(device, scheme)
        rng = random.Random(7)
        addresses = [rng.randrange(0, 1 << 30) for _ in range(2_000)]
        vector = mapper.map_row_ids(np.asarray(addresses, dtype=np.uint64))
        row_keys = {}
        for address, row_id in zip(addresses, vector.tolist()):
            key = mapper.map(address).row_key
            assert mapper.row_id(mapper.map(address)) == row_id
            # Bijection: one id <-> one row_key.
            assert row_keys.setdefault(row_id, key) == key

    def test_distinct_rows_distinct_ids(self):
        device = DeviceConfig.ddr5_4800(rows_per_bank=64)
        mapper = AddressMapper(device, MappingScheme.MOP)
        ids = set()
        keys = set()
        for address in range(0, 1 << 22, 4096):
            coord = mapper.map(address)
            keys.add(coord.row_key)
            ids.add(mapper.row_id(coord))
        assert len(ids) == len(keys)


class TestBackendEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=[s.value for s in SCHEMES])
    def test_random_traces(self, scheme):
        device = DeviceConfig.ddr5_4800(rows_per_bank=2048)
        mapper = AddressMapper(device, scheme)
        for seed in range(4):
            assert_backends_identical(random_trace(seed), mapper)

    def test_window_prefixes(self):
        mapper = AddressMapper(DeviceConfig.ddr5_4800(rows_per_bank=2048))
        trace = random_trace(11)
        for window in (1, 7, 100, len(trace), None):
            assert_backends_identical(trace, mapper, window_entries=window)

    def test_hot_row_counts_cross_thresholds(self):
        """Concentrated hammering exercises the >512/>128/>64 buckets."""

        device = DeviceConfig.ddr5_4800(rows_per_bank=256)
        mapper = AddressMapper(device, MappingScheme.MOP)
        rng = random.Random(3)
        hot = [rng.randrange(0, 1 << 14) for _ in range(8)]
        addresses = [rng.choice(hot) for _ in range(5_000)]
        trace = Trace.from_columns([1] * len(addresses), addresses,
                                   [0] * len(addresses), name="hot")
        stats = trace.characterize(mapper, backend="numpy")
        assert stats.rows_over_64 > 0  # the buckets are actually exercised
        assert_backends_identical(trace, mapper)

    def test_generated_mix_traces(self):
        device = DeviceConfig.ddr5_4800(rows_per_bank=4096)
        mix = make_mix("HMLA", device=device, entries_per_core=1_000,
                       attacker_entries=1_500,
                       attacker_config=AttackerConfig(entries=1_500, seed=0))
        mapper = AddressMapper(device)
        for trace in mix.traces:
            assert_backends_identical(trace, mapper)

    def test_characterize_trace_backend_passthrough(self):
        trace = random_trace(5, entries=500)
        scalar = characterize_trace(trace, backend="scalar")
        vectorised = characterize_trace(trace, backend="numpy")
        assert scalar == vectorised

    def test_unknown_backend_rejected(self):
        trace = random_trace(0, entries=10)
        mapper = AddressMapper(DeviceConfig.ddr5_4800())
        with pytest.raises(ValueError):
            trace.characterize(mapper, backend="gpu")

"""Session streaming aggregation: bit-identical to the legacy batch path.

The contract pinned here (acceptance criterion of the repro.api redesign):
every figure computed through the futures/streaming surface
(:meth:`repro.api.Session.figure` / :meth:`figures`) is **bit-identical**
to the legacy batch path (:class:`ExperimentRunner` ``figureN`` over
``prefetch``) — on the serial executor and the ``jobs=2`` process pool,
against a cold and a warm on-disk run cache.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import ExperimentSpec, RunPoint, Session, iter_completed

#: Small enough for tier-1, big enough to exercise attack + benign grids,
#: baselines, and per-trace alone-IPC sharding.
SPEC = ExperimentSpec.tiny(mechanisms=("para", "rfm"))

#: The streamed-vs-batch equivalence matrix runs these figures: a per-mix
#: ratio figure (alone-IPC baselines), an energy sweep (no alone), and the
#: motivation figure (no-mitigation baseline runs).
FIGURE_IDS = ("fig6", "fig12", "fig2")

FIG2_KWARGS = dict(mechanisms=["para", "rfm"])


def legacy_figures() -> dict:
    """The batch-path reference (serial prefetch, hermetic caches)."""

    with Session(SPEC, jobs=1, cache_dir="") as session:
        runner = session.runner
        return {
            "fig6": runner.figure6().as_dict(),
            "fig12": runner.figure12().as_dict(),
            "fig2": runner.figure2(**FIG2_KWARGS).as_dict(),
            "headline": runner.headline_numbers(),
        }


@pytest.fixture(scope="module")
def reference() -> dict:
    return legacy_figures()


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "jobs2"])
def test_streamed_figures_bit_identical_to_batch(jobs, reference):
    with Session(SPEC, jobs=jobs, cache_dir="") as session:
        assert session.jobs == jobs
        assert session.figure("fig6").as_dict() == reference["fig6"]
        assert session.figure("fig12").as_dict() == reference["fig12"]
        assert session.figure("fig2", **FIG2_KWARGS).as_dict() \
            == reference["fig2"]
        assert session.headline_numbers() == reference["headline"]


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "jobs2"])
def test_streamed_figures_cold_and_warm_cache(jobs, reference, tmp_path):
    cache_dir = str(tmp_path / "cache")
    # Cold cache: everything simulates, results land on disk.
    with Session(SPEC, jobs=jobs, cache_dir=cache_dir) as cold:
        cold_results = cold.figures(
            FIGURE_IDS, fig2=FIG2_KWARGS,
        )
        executed = cold.runs_executed
        assert executed > 0
    for figure_id in FIGURE_IDS:
        assert cold_results[figure_id].as_dict() == reference[figure_id]
    # Warm cache: a fresh session simulates nothing and still matches.
    with Session(SPEC, jobs=jobs, cache_dir=cache_dir) as warm:
        warm_results = warm.figures(FIGURE_IDS, fig2=FIG2_KWARGS)
        assert warm.runs_executed == 0
    for figure_id in FIGURE_IDS:
        assert warm_results[figure_id].as_dict() == reference[figure_id]


def test_overlapped_figures_match_individual(reference):
    """figures() (shared submission, early aggregation) changes nothing."""

    with Session(SPEC, jobs=2, cache_dir="") as session:
        combined = session.figures(FIGURE_IDS, fig2=FIG2_KWARGS)
    for figure_id in FIGURE_IDS:
        assert combined[figure_id].as_dict() == reference[figure_id]


class TestHandles:
    def test_submit_deduplicates_inflight_points(self):
        with Session(SPEC, jobs=1, cache_dir="") as session:
            first = session.submit("MMLA", "para", 64, True)
            second = session.submit("MMLA", "para", 64, True)
            assert first is second
            stats = first.result()
            assert session.runs_executed == 1
            # A fresh handle over the now-cached point is born completed.
            third = session.submit("MMLA", "para", 64, True)
            assert third.done()
            assert dataclasses.asdict(third.result()) \
                == dataclasses.asdict(stats)

    def test_submit_grid_one_handle_per_distinct_point(self):
        points = [
            RunPoint("MMLA", "para", 64, False),
            RunPoint("MMLA", "para", 64, False),   # duplicate
            RunPoint("MMLA", "rfm", 64, False),
        ]
        with Session(SPEC, jobs=1, cache_dir="") as session:
            handles = session.submit_grid(points)
            assert len(handles) == 2
            for handle in iter_completed(handles):
                handle.result()
            assert session.runs_executed == 2

    def test_alone_baselines_are_first_class_points(self):
        """Per-trace alone-IPC handles shard through the same pool."""

        with Session(SPEC, jobs=2, cache_dir="") as session:
            handles = session.submit_alone("MMLA")
            mix = session.runner.mix("MMLA")
            assert len(handles) == len(mix.traces)
            ipcs = {h.key: h.result().ipc for h in iter_completed(handles)}
            # The merged futures agree with the serial reference API.
            for trace in mix.traces:
                assert session.runner.alone_ipc(trace) \
                    == ipcs[(trace.name, len(trace))]

    def test_pool_and_serial_handles_agree(self):
        with Session(SPEC, jobs=1, cache_dir="") as serial, \
                Session(SPEC, jobs=2, cache_dir="") as pool:
            lhs = serial.run("MMLA", "rfm", 64, True)
            rhs = pool.run("MMLA", "rfm", 64, True)
            assert dataclasses.asdict(lhs) == dataclasses.asdict(rhs)

    def test_stream_callback_sees_every_handle(self):
        seen = []
        with Session(SPEC, jobs=1, cache_dir="") as session:
            figure = session.stream("fig6", on_result=seen.append)
        plan = None
        with Session(SPEC, jobs=1, cache_dir="") as session:
            plan = session.runner.figure_plan("fig6")
        alone_traces = 4  # MMLA: three benign + one attacker trace
        assert len(seen) == len(set(plan.runs)) + alone_traces
        assert figure.as_dict() == legacy_figures()["fig6"]


class TestTables:
    def test_tables_exposed(self):
        with Session(SPEC, jobs=1, cache_dir="") as session:
            assert len(session.table("table1")) > 0
            assert len(session.table("hw")) > 0
            with pytest.raises(ValueError):
                session.table("table99")

    def test_unknown_figure_rejected(self):
        with Session(SPEC, jobs=1, cache_dir="") as session:
            with pytest.raises(ValueError):
                session.figure("fig99")

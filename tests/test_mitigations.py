"""Tests for the eight RowHammer mitigation mechanisms and BlockHammer."""

import pytest

from repro.dram.address import DramAddress
from repro.dram.commands import CommandType
from repro.dram.config import DeviceConfig
from repro.mitigations import (
    Aqua,
    BlockHammer,
    Graphene,
    Hydra,
    MisraGriesTable,
    NoMitigation,
    Para,
    Prac,
    PreventiveActionKind,
    Rega,
    RfmMitigation,
    TwiCe,
    available_mechanisms,
    create_mechanism,
    register_mechanism,
)
from repro.mitigations.registry import NRH_SWEEP, PAIRED_MECHANISMS


CFG = DeviceConfig.tiny()


def coord(row=10, bank=0, bank_group=0, rank=0):
    return DramAddress(channel=0, rank=rank, bank_group=bank_group, bank=bank,
                       row=row, column=0)


def hammer(mechanism, row, count, thread=0, start_cycle=0, step=50):
    """Feed ``count`` activations of one row; return all produced actions."""

    actions = []
    cycle = start_cycle
    for _ in range(count):
        actions.extend(mechanism.on_activation(coord(row), thread, cycle))
        cycle += step
    return actions


class TestBaseClass:
    def test_invalid_nrh_rejected(self):
        with pytest.raises(ValueError):
            Para(CFG, nrh=0)

    def test_no_mitigation_never_acts(self):
        mech = NoMitigation(CFG)
        assert hammer(mech, 3, 500) == []
        assert mech.stats()["actions_triggered"] == 0

    def test_victim_refresh_action_respects_blast_radius(self):
        mech = Para(CFG, nrh=64, probability=1.0, blast_radius=2)
        actions = mech.on_activation(coord(10), 0, 0)
        assert len(actions) == 1
        rows = {cmd.row for cmd in actions[0].commands}
        assert rows == {8, 9, 11, 12}

    def test_victim_refresh_clipped_at_row_zero(self):
        mech = Para(CFG, nrh=64, probability=1.0)
        actions = mech.on_activation(coord(0), 0, 0)
        rows = {cmd.row for cmd in actions[0].commands}
        assert rows == {1}  # row -1 does not exist


class TestPara:
    def test_probability_scales_with_nrh(self):
        assert Para(CFG, nrh=64).probability > Para(CFG, nrh=4096).probability

    def test_probability_one_always_triggers(self):
        mech = Para(CFG, nrh=64, probability=1.0)
        actions = hammer(mech, 5, 20)
        assert len(actions) == 20
        assert all(a.kind is PreventiveActionKind.VICTIM_REFRESH for a in actions)

    def test_trigger_rate_close_to_probability(self):
        mech = Para(CFG, nrh=64, probability=0.25, seed=3)
        actions = hammer(mech, 5, 4000)
        assert 0.2 < len(actions) / 4000 < 0.3

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Para(CFG, nrh=64, probability=0.0)

    def test_deterministic_with_seed(self):
        a = [len(hammer(Para(CFG, nrh=128, seed=7), 5, 200))]
        b = [len(hammer(Para(CFG, nrh=128, seed=7), 5, 200))]
        assert a == b


class TestMisraGries:
    def test_tracks_frequent_element(self):
        table = MisraGriesTable(capacity=2)
        for _ in range(10):
            table.observe(1)
        assert table.counters[1] == 10

    def test_spillover_when_full(self):
        table = MisraGriesTable(capacity=1)
        table.observe(1)
        estimate = table.observe(2)
        assert estimate >= 1
        assert table.spillover >= 0

    def test_estimate_never_underestimates_by_more_than_spillover(self):
        table = MisraGriesTable(capacity=4)
        true_counts = {}
        import random
        rng = random.Random(0)
        for _ in range(2000):
            row = rng.randrange(12)
            true_counts[row] = true_counts.get(row, 0) + 1
            table.observe(row)
        for row, estimate in table.counters.items():
            assert estimate + 0 >= true_counts[row] - table.spillover


class TestGraphene:
    def test_refreshes_after_threshold(self):
        mech = Graphene(CFG, nrh=64)
        actions = hammer(mech, 7, 40)
        assert len(actions) >= 1
        assert actions[0].kind is PreventiveActionKind.VICTIM_REFRESH
        assert mech.refresh_threshold == 32

    def test_no_refresh_below_threshold(self):
        mech = Graphene(CFG, nrh=64)
        assert hammer(mech, 7, 20) == []

    def test_reset_on_refresh_window(self):
        mech = Graphene(CFG, nrh=64)
        hammer(mech, 7, 20)
        mech.on_refresh_window(0)
        assert hammer(mech, 7, 20) == []  # counter restarted

    def test_repeated_hammering_triggers_repeatedly(self):
        mech = Graphene(CFG, nrh=64)
        actions = hammer(mech, 7, 200)
        assert len(actions) >= 5

    def test_tracks_multiple_banks_independently(self):
        mech = Graphene(CFG, nrh=64)
        for i in range(40):
            mech.on_activation(coord(7, bank=0), 0, i)
            mech.on_activation(coord(7, bank=1), 0, i)
        assert mech.stats()["banks_tracked"] == 2


class TestHydra:
    def test_group_then_row_tracking(self):
        mech = Hydra(CFG, nrh=32)
        actions = hammer(mech, 9, 100)
        refreshes = [a for a in actions
                     if a.metadata.get("reason") != "rct_miss"]
        assert refreshes, "per-row tracking should eventually refresh"

    def test_rct_misses_counted(self):
        mech = Hydra(CFG, nrh=32)
        hammer(mech, 9, 100)
        assert mech.rcc_misses >= 1
        assert mech.rcc_hits >= 1

    def test_refresh_window_resets_state(self):
        mech = Hydra(CFG, nrh=32)
        hammer(mech, 9, 100)
        mech.on_refresh_window(0)
        assert hammer(mech, 9, 5) == []

    def test_sram_cost_reported(self):
        assert Hydra(CFG, nrh=1024).sram_cost_bytes() > 0


class TestTwiCe:
    def test_refresh_after_threshold(self):
        mech = TwiCe(CFG, nrh=64)
        actions = hammer(mech, 4, 64)
        assert len(actions) >= 1

    def test_pruning_removes_cold_rows(self):
        mech = TwiCe(CFG, nrh=1024, checkpoint_interval_cycles=100)
        mech.on_activation(coord(4), 0, 0)
        for cycle in range(0, 1000, 100):
            mech.tick(cycle)
        assert mech.pruned_entries >= 1

    def test_hot_rows_survive_pruning(self):
        mech = TwiCe(CFG, nrh=64, checkpoint_interval_cycles=1000)
        for cycle in range(0, 2000, 10):
            mech.on_activation(coord(4), 0, cycle)
            mech.tick(cycle)
        table = mech._tables[coord(4).bank_key]
        # The hot row is either still tracked or was refreshed (reset).
        assert mech.actions_triggered >= 1 or 4 in table


class TestAqua:
    def test_migration_after_threshold(self):
        mech = Aqua(CFG, nrh=64)
        actions = hammer(mech, 11, 40)
        assert any(a.kind is PreventiveActionKind.ROW_MIGRATION for a in actions)
        assert any(cmd.kind is CommandType.MIG
                   for a in actions for cmd in a.commands)

    def test_quarantine_overflow_causes_extra_migration(self):
        mech = Aqua(CFG, nrh=8, quarantine_rows_per_bank=1)
        actions = []
        for row in range(5):
            actions.extend(hammer(mech, row * 10, 10))
        assert mech.dequarantine_migrations >= 1

    def test_migrations_counted(self):
        mech = Aqua(CFG, nrh=64)
        hammer(mech, 11, 100)
        assert mech.migrations == mech.stats()["migrations"] >= 1


class TestRega:
    def test_no_blocking_commands(self):
        mech = Rega(CFG, nrh=64)
        actions = hammer(mech, 3, 10)
        assert actions, "REGA should emit scoring actions"
        assert all(not a.commands for a in actions)

    def test_timing_penalty_grows_as_nrh_drops(self):
        assert Rega(CFG, nrh=64).timing_penalty_ns() > Rega(
            CFG, nrh=4096).timing_penalty_ns()

    def test_adjusted_timings_extend_trc(self):
        mech = Rega(CFG, nrh=64)
        adjusted = mech.adjusted_timings()
        assert adjusted.trc > CFG.timings.trc
        assert adjusted.tras > CFG.timings.tras
        assert adjusted.trcd == CFG.timings.trcd

    def test_scoring_rate_follows_rega_t(self):
        mech = Rega(CFG, nrh=4096, rega_t=4)
        actions = hammer(mech, 3, 40)
        assert len(actions) == 10


class TestRfm:
    def test_rfm_issued_every_raaimt_activations(self):
        mech = RfmMitigation(CFG, nrh=4096, raaimt=10)
        actions = hammer(mech, 3, 35)
        assert len(actions) == 3
        assert all(a.kind is PreventiveActionKind.RFM for a in actions)
        assert all(cmd.kind is CommandType.RFM
                   for a in actions for cmd in a.commands)

    def test_raaimt_scales_with_nrh(self):
        assert RfmMitigation(CFG, nrh=64).raaimt < RfmMitigation(
            CFG, nrh=4096).raaimt

    def test_counters_are_per_bank(self):
        mech = RfmMitigation(CFG, nrh=4096, raaimt=10)
        for i in range(9):
            assert mech.on_activation(coord(3, bank=0), 0, i) == []
            assert mech.on_activation(coord(3, bank=1), 0, i) == []
        assert mech.on_activation(coord(3, bank=0), 0, 100) != []

    def test_refresh_window_resets_raa(self):
        mech = RfmMitigation(CFG, nrh=4096, raaimt=10)
        hammer(mech, 3, 9)
        mech.on_refresh_window(0)
        assert hammer(mech, 3, 9) == []


class TestPrac:
    def test_backoff_after_threshold(self):
        mech = Prac(CFG, nrh=64)
        actions = hammer(mech, 6, 32)
        assert actions
        assert actions[0].kind is PreventiveActionKind.BACKOFF

    def test_backoff_includes_rfm_commands(self):
        mech = Prac(CFG, nrh=64, rfm_per_backoff=3)
        actions = hammer(mech, 6, 40)
        kinds = [cmd.kind for a in actions for cmd in a.commands]
        assert CommandType.VRR in kinds
        assert CommandType.RFM in kinds

    def test_counter_resets_after_backoff(self):
        mech = Prac(CFG, nrh=64)
        hammer(mech, 6, 32)
        assert mech._row_counters.get(coord(6).row_key, 0) == 0

    def test_precise_per_row_counting(self):
        mech = Prac(CFG, nrh=64)
        for i in range(31):
            assert mech.on_activation(coord(6), 0, i) == []
            assert mech.on_activation(coord(8), 0, i) == []
        assert mech.backoffs == 0


class TestBlockHammer:
    def test_blacklists_after_threshold(self):
        mech = BlockHammer(CFG, nrh=32)
        hammer(mech, 5, mech.blacklist_threshold)
        assert mech.is_blacklisted(coord(5))
        assert mech.blacklisted_rows == 1

    def test_blacklisted_row_is_rate_limited(self):
        mech = BlockHammer(CFG, nrh=32)
        hammer(mech, 5, mech.blacklist_threshold, step=1)
        last_cycle = mech.blacklist_threshold
        assert not mech.allow_activation(coord(5), last_cycle + 1)
        assert mech.delayed_activations == 1
        ok_cycle = last_cycle + mech.min_activation_interval
        assert mech.allow_activation(coord(5), ok_cycle)

    def test_benign_row_never_blocked(self):
        mech = BlockHammer(CFG, nrh=32)
        hammer(mech, 5, 3)
        assert mech.allow_activation(coord(5), 100)

    def test_interval_grows_as_nrh_shrinks(self):
        assert BlockHammer(CFG, nrh=64).min_activation_interval > BlockHammer(
            CFG, nrh=4096).min_activation_interval

    def test_window_rotation_expires_old_counts(self):
        mech = BlockHammer(CFG, nrh=32)
        hammer(mech, 5, mech.blacklist_threshold, step=1)
        half = mech.window_cycles // 2
        mech.tick(half + 1)
        mech.tick(2 * half + 1)
        assert not mech.is_blacklisted(coord(5))

    def test_history_buffer_grows_as_nrh_shrinks(self):
        assert BlockHammer(CFG, nrh=64).history_buffer_bytes() >= BlockHammer(
            CFG, nrh=4096).history_buffer_bytes()


class TestRegistry:
    def test_all_paper_mechanisms_available(self):
        names = available_mechanisms()
        for name in PAIRED_MECHANISMS + ["blockhammer", "none"]:
            assert name in names

    def test_create_by_name(self):
        mech = create_mechanism("graphene", CFG, nrh=128)
        assert isinstance(mech, Graphene)
        assert mech.nrh == 128

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_mechanism("unknown", CFG, nrh=128)

    def test_register_custom_mechanism(self):
        class Custom(NoMitigation):
            name = "custom_test"

        register_mechanism("custom_test", lambda cfg, nrh: Custom(cfg),
                           overwrite=True)
        assert isinstance(create_mechanism("custom_test", CFG, nrh=5), Custom)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_mechanism("para", Para)

    def test_nrh_sweep_matches_paper(self):
        assert NRH_SWEEP == [4096, 2048, 1024, 512, 256, 128, 64]

    def test_kwargs_forwarded(self):
        mech = create_mechanism("para", CFG, nrh=64, probability=0.5)
        assert mech.probability == 0.5

"""The distributed sweep backend: correctness and failure modes.

Contracts pinned here:

* a figure sweep executed through ``Session(backend="cluster")`` with two
  real worker processes over a Unix domain socket is bit-identical to the
  serial path — cold cache and warm cache (the warm broker recomputes
  nothing at all);
* a worker killed mid-point (it dies after claiming work, before
  replying) has its point requeued and the figure still aggregates
  bit-identically;
* a worker pinned to a stale spec is rejected at handshake, and the
  broker keeps serving correct workers afterwards;
* a truncated/corrupt wire frame is detected by the CRC framing (never
  mis-decoded), the connection is dropped, and the point is recomputed —
  mirroring the injection style of ``test_runcache_corruption.py``;
* the serial-vs-cluster differential over the fixed cluster corpus is
  clean (the fuzzer replays the same corpus in campaigns).
"""

from __future__ import annotations

import dataclasses
import socket
import struct
import time
import warnings

import pytest

from repro.analysis.experiments import ExperimentRunner, HarnessConfig
from repro.api import ExperimentSpec, Session
from repro.cluster import (
    cluster_broker,
    parse_address,
    spawn_local_workers,
)
from repro.cluster import protocol
from repro.cluster.worker import CRASH_AFTER_ENV, reap_workers
from repro.testing.fuzz import executor_differential
from repro.testing.scenarios import cluster_corpus

SPEC = ExperimentSpec.tiny()

#: Generous bound on broker/worker state transitions (worker start-up is
#: an interpreter launch; the simulations themselves are sub-second).
TIMEOUT = 120.0


def serial_reference():
    with Session(SPEC, jobs=1, cache_dir="") as session:
        return session.figure("fig6", nrh=64)


@pytest.fixture(scope="module")
def reference():
    return serial_reference()


def poll(predicate, what: str, timeout: float = TIMEOUT) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(0.02)


# ---------------------------------------------------------------------- #
# Wire protocol units
# ---------------------------------------------------------------------- #
class TestProtocol:
    def roundtrip(self, kind, **payload):
        lhs, rhs = socket.socketpair()
        try:
            protocol.send_message(lhs, kind, **payload)
            return protocol.recv_message(rhs)
        finally:
            lhs.close()
            rhs.close()

    def test_message_round_trip(self):
        kind, payload = self.roundtrip(protocol.WORK, task=("t",), n=3)
        assert kind == protocol.WORK
        assert payload == {"task": ("t",), "n": 3}

    def test_clean_eof_is_connection_closed(self):
        lhs, rhs = socket.socketpair()
        lhs.close()
        with pytest.raises(protocol.ConnectionClosed):
            protocol.recv_message(rhs)
        rhs.close()

    def test_mid_frame_eof_is_frame_error(self):
        lhs, rhs = socket.socketpair()
        lhs.sendall(b"RCLU\x00\x00")  # half a header, then silence
        lhs.close()
        with pytest.raises(protocol.FrameError):
            protocol.recv_message(rhs)
        rhs.close()

    def test_bad_magic_rejected(self):
        lhs, rhs = socket.socketpair()
        lhs.sendall(struct.pack("<4sIQ", b"NOPE", 0, 0))
        with pytest.raises(protocol.FrameError, match="magic"):
            protocol.recv_message(rhs)
        lhs.close()
        rhs.close()

    def test_crc_catches_flipped_payload_bit(self):
        lhs, rhs = socket.socketpair()
        import pickle
        import zlib

        body = bytearray(pickle.dumps(("result", {"x": 1})))
        crc = zlib.crc32(bytes(body))
        body[-1] ^= 0x01
        lhs.sendall(struct.pack("<4sIQ", b"RCLU", crc, len(body)) + body)
        with pytest.raises(protocol.FrameError, match="CRC"):
            protocol.recv_message(rhs)
        lhs.close()
        rhs.close()

    def test_absurd_length_rejected_before_allocation(self):
        lhs, rhs = socket.socketpair()
        lhs.sendall(struct.pack("<4sIQ", b"RCLU", 0, 1 << 62))
        with pytest.raises(protocol.FrameError, match="length"):
            protocol.recv_message(rhs)
        lhs.close()
        rhs.close()

    def test_stale_unix_socket_path_is_reclaimed(self, tmp_path):
        path = tmp_path / "crashed.sock"
        listener, bound = protocol.bind_listener(parse_address(f"unix:{path}"))
        listener.close()  # a crashed broker: socket file left behind
        assert path.exists()
        relisten, _ = protocol.bind_listener(parse_address(f"unix:{path}"))
        relisten.close()

    def test_live_unix_socket_path_is_not_stolen(self, tmp_path):
        path = tmp_path / "live.sock"
        listener, _ = protocol.bind_listener(parse_address(f"unix:{path}"))
        try:
            with pytest.raises(OSError):
                protocol.bind_listener(parse_address(f"unix:{path}"))
        finally:
            listener.close()

    def test_parse_address_forms(self):
        tcp = parse_address("example.org:7777")
        assert (tcp.kind, tcp.host, tcp.port) == ("tcp", "example.org", 7777)
        assert parse_address(":0").host == "127.0.0.1"
        unix = parse_address("unix:/tmp/b.sock")
        assert (unix.kind, unix.path) == ("unix", "/tmp/b.sock")
        assert str(unix) == "unix:/tmp/b.sock"
        with pytest.raises(ValueError):
            parse_address("unix:")
        with pytest.raises(ValueError):
            parse_address("no-port-here")


# ---------------------------------------------------------------------- #
# The acceptance contract: cluster == serial, cold and warm
# ---------------------------------------------------------------------- #
@pytest.mark.cluster_smoke
class TestClusterSmoke:
    def test_unix_socket_two_workers_bit_identical(self, reference, tmp_path):
        broker_path = tmp_path / "broker.sock"
        with Session(SPEC, backend="cluster", broker=f"unix:{broker_path}",
                     workers=2, cache_dir="") as session:
            assert session.backend == "cluster"
            # workers=2 is an elastic ceiling: one warm worker spawns
            # eagerly and the autoscaler grows the fleet against the
            # sweep's backlog — no pre-sweep worker barrier needed.
            figure = session.figure("fig6", nrh=64)
            broker = cluster_broker(session)
            assert broker.results_received > 0
            # The sweep really ran remotely: merged results counted here.
            assert session.runs_executed > 0
            stats = session.cluster_stats()
            assert stats["scheduling"] == "cost"
            assert stats["scheduled_by_cost"] > 0
            assert sum(per["served"] for per in stats["workers"].values()) \
                == broker.results_received
        assert figure.as_dict() == reference.as_dict()

    def test_cold_then_warm_cache_bit_identical(self, reference, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with Session(SPEC, backend="cluster", workers=2,
                     cache_dir=cache_dir) as cold:
            cold_figure = cold.figure("fig6", nrh=64)
            assert cold.cache is not None and cold.cache.writes > 0
        assert cold_figure.as_dict() == reference.as_dict()

        # A resumed broker over the same cache skips every completed
        # point: zero workers are needed and nothing is recomputed.
        with Session(SPEC, backend="cluster", workers=0,
                     cache_dir=cache_dir) as warm:
            warm_figure = warm.figure("fig6", nrh=64)
            assert warm.runs_executed == 0
        assert warm_figure.as_dict() == reference.as_dict()


# ---------------------------------------------------------------------- #
# Failure modes
# ---------------------------------------------------------------------- #
class TestWorkerDeath:
    def test_killed_worker_requeues_and_figure_is_identical(self, reference):
        with Session(SPEC, backend="cluster", cache_dir="") as session:
            broker = cluster_broker(session)
            plan = session.runner.figure_plan("fig6", nrh=64)
            session.runner.submit_plan(plan)  # queue the grid up front
            # First worker claims a point and dies before replying
            # (os._exit on its first work frame) -> the broker must
            # requeue that exact in-flight point.
            crasher = spawn_local_workers(
                broker.address, 1, extra_env={CRASH_AFTER_ENV: "1"}
            )
            poll(lambda: broker.requeued_points >= 1, "the requeue")
            survivor = spawn_local_workers(broker.address, 1)
            figure = session.figure("fig6", nrh=64)
            assert broker.requeued_points >= 1
            reap_workers(crasher)
        assert figure.as_dict() == reference.as_dict()
        reap_workers(survivor)


class TestDeadFleet:
    def test_whole_fleet_dying_fails_futures_instead_of_hanging(
            self, monkeypatch):
        # Every spawned worker inherits the startup crash hook ("0"):
        # each dies before ever connecting, so the fleet (including the
        # autoscaler's respawn budget) annihilates itself without serving
        # a single point and the monitor must fail the pending futures
        # (with a reason), never hang the sweep.  A worker crashing
        # *after* claiming work is the poison-point path instead — see
        # tests/test_cluster_scheduling.py.
        monkeypatch.setenv(CRASH_AFTER_ENV, "0")
        with Session(SPEC, backend="cluster", workers=1,
                     cache_dir="") as session:
            handle = session.submit("MMLA", "para", 64, False)
            with pytest.raises(RuntimeError,
                               match="exited without serving"):
                handle.result(timeout=TIMEOUT)
            broker = cluster_broker(session)
            assert broker.fabric_error is not None
            # Later submissions fail fast on the dead fabric too.
            with pytest.raises(RuntimeError):
                session.submit("MMLA", "para", 64, True)


class TestStaleWorker:
    def test_stale_spec_rejected_then_good_worker_serves(self, tmp_path):
        stale_spec = tmp_path / "stale.json"
        ExperimentSpec.tiny(sim_cycles=2_000).dump_json(stale_spec)
        with Session(SPEC, backend="cluster", cache_dir="") as session:
            broker = cluster_broker(session)
            stale = spawn_local_workers(broker.address, 1,
                                        spec_path=str(stale_spec))
            poll(lambda: broker.workers_rejected >= 1, "the rejection")
            # The stale worker exited with the 'rejected' status and never
            # served a point.
            assert stale[0].wait(timeout=TIMEOUT) == 2
            diagnostics = reap_workers(stale)
            assert any("stale spec" in text for text in diagnostics)
            assert broker.worker_count == 0

            good = spawn_local_workers(broker.address, 1)
            handle = session.submit("MMLA", "para", 64, False)
            stats = handle.result(timeout=TIMEOUT)
        with Session(SPEC, jobs=1, cache_dir="") as serial:
            expected = serial.run("MMLA", "para", 64, False)
        assert dataclasses.asdict(stats) == dataclasses.asdict(expected)
        reap_workers(good)


class TestCorruptFrame:
    def _handshake(self, broker) -> socket.socket:
        sock = protocol.connect(broker.address, timeout=30.0)
        protocol.send_message(sock, protocol.HELLO,
                              version=protocol.PROTOCOL_VERSION,
                              fingerprint=None)
        kind, payload = protocol.recv_message(sock)
        assert kind == protocol.CONFIG
        assert payload["fingerprint"] == broker.fingerprint
        protocol.send_message(sock, protocol.READY,
                              fingerprint=payload["fingerprint"])
        return sock

    def test_truncated_result_frame_is_detected_and_recomputed(self):
        with Session(SPEC, backend="cluster", cache_dir="") as session:
            broker = cluster_broker(session)
            handle = session.submit("MMLA", "para", 64, True)
            # A "worker" that claims the point, then emits half a frame —
            # a torn write on the wire, as a crashing sender leaves it.
            saboteur = self._handshake(broker)
            kind, payload = protocol.recv_message(saboteur)
            assert kind == protocol.WORK
            assert payload["fingerprint"] == broker.fingerprint
            saboteur.sendall(b"RCLU\x07garbage-that-is-not-a-frame")
            saboteur.close()
            poll(lambda: broker.corrupt_frames >= 1, "corruption detection")
            assert broker.requeued_points >= 1
            # A real worker recomputes the requeued point.
            workers = spawn_local_workers(broker.address, 1)
            stats = handle.result(timeout=TIMEOUT)
        with Session(SPEC, jobs=1, cache_dir="") as serial:
            expected = serial.run("MMLA", "para", 64, True)
        assert dataclasses.asdict(stats) == dataclasses.asdict(expected)
        reap_workers(workers)


# ---------------------------------------------------------------------- #
# Differential: serial vs cluster over the fixed corpus
# ---------------------------------------------------------------------- #
def test_serial_vs_cluster_differential_clean():
    # Tier-1 replays a representative subset — one plain point, one
    # non-default mechanism, and the widest multi-seed point (which the
    # broker fans out across its grid).  The full corpus runs through
    # ``python -m repro.testing.fuzz --jobs N`` campaigns, and the fabric
    # itself is pinned by TestClusterSmoke above.
    scenarios = cluster_corpus()
    assert len(scenarios) >= 5
    assert all(s.harness_shaped() for s in scenarios)
    subset = [scenarios[0], scenarios[3], scenarios[-1]]
    assert any(s.extra_seeds for s in subset)
    mismatches = executor_differential(subset, jobs=2, backend="cluster")
    assert mismatches == []


# ---------------------------------------------------------------------- #
# Deprecation clock of the legacy facade
# ---------------------------------------------------------------------- #
class TestLegacyFacadeDeprecation:
    CONFIG = dict(sim_cycles=1_500, entries_per_core=600,
                  attacker_entries=800, jobs=1, cache_dir="")

    def test_direct_runner_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api.Session"):
            ExperimentRunner(HarnessConfig(**self.CONFIG))

    def test_session_owned_runner_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Session(SPEC, jobs=1, cache_dir="") as session:
                assert session.runner is not None

"""Cost-aware cluster scheduling, elasticity, and the fault-path bounds.

Contracts pinned here:

* the :class:`~repro.cluster.costs.CostModel` cold-start statics order
  work sensibly (cycle > fast, grid run > alone baseline, batch ~ lane
  sum), the EWMA folds observations as specified, and the learned table
  round-trips through its JSON persistence (corrupt files fall back to
  statics);
* the broker's cost queue dispatches longest-job-first and chunks cheap
  points, while ``fifo`` mode preserves submission order with no chunks;
* a deterministic *poison point* (a task that kills every worker that
  claims it) fails its future with a diagnostic naming the task and the
  killed workers after the requeue bound — and the sweep's other points
  still complete;
* a worker flooding >64KiB of stderr cannot deadlock a campaign against
  its own un-drained pipe;
* one cost-scheduled heterogeneous mini-sweep (grid runs + alone
  baselines, elastic two-worker fleet) is bit-identical to the serial
  path with the scheduling counters live (``sched_smoke``);
* ``_LazyFuture.result(timeout)`` honours the timeout after the fact
  (the thunk cannot be preempted) instead of silently ignoring it.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError

import pytest

from repro.analysis.executor import (
    TASK_ALONE,
    TASK_BATCH,
    TASK_RUN,
    BatchSliceFuture,
    RunTask,
    _LazyFuture,
)
from repro.analysis.experiments import HarnessConfig
from repro.api import ExperimentSpec, Session
from repro.cluster import ClusterTaskError, CostModel, cluster_broker
from repro.cluster.broker import ClusterBroker, _CostQueue
from repro.cluster.worker import POISON_NRH_ENV, STDERR_FLOOD_ENV

SPEC = ExperimentSpec.tiny()

TIMEOUT = 120.0

TINY_CONFIG = dict(sim_cycles=1_500, entries_per_core=600,
                   attacker_entries=800, jobs=1, cache_dir="")


def tiny_config(**overrides) -> HarnessConfig:
    return HarnessConfig(**{**TINY_CONFIG, **overrides})


def run_task(nrh: int = 64, mechanism: str = "para",
             mix: str = "MMLA") -> RunTask:
    return RunTask(kind=TASK_RUN, mix_name=mix, mechanism=mechanism,
                   nrh=nrh)


# ---------------------------------------------------------------------- #
# Cost model units
# ---------------------------------------------------------------------- #
class TestCostModel:
    def test_cold_start_orders_engines_and_kinds(self):
        fast = CostModel(tiny_config(engine="fast"))
        cycle = CostModel(tiny_config(engine="cycle"))
        grid = run_task()
        alone = RunTask(kind=TASK_ALONE, mix_name="MMLA", trace_index=0)
        # The cycle engine steps every DRAM cycle; a four-core grid run
        # simulates more entries than a single alone trace.
        assert cycle.predict(grid) > fast.predict(grid)
        assert fast.predict(grid) > fast.predict(alone)
        assert cycle.predict(alone) > fast.predict(alone)

    def test_cold_start_nrh_pressure(self):
        model = CostModel(tiny_config())
        assert model.predict(run_task(nrh=64)) \
            > model.predict(run_task(nrh=4096))

    def test_batch_scales_with_lanes(self):
        model = CostModel(tiny_config())
        solo = run_task()
        two = RunTask(kind=TASK_BATCH, mix_name="MMLA",
                      group=(run_task(nrh=64), run_task(nrh=128)))
        four = RunTask(kind=TASK_BATCH, mix_name="MMLA",
                       group=tuple(run_task(nrh=n)
                                   for n in (64, 128, 256, 512)))
        assert model.predict(two) > model.predict(solo)
        assert model.predict(four) > model.predict(two)

    def test_ewma_update(self):
        model = CostModel(tiny_config(), alpha=0.5)
        task = run_task()
        model.observe(task, 1.0)
        assert model.predict(task) == pytest.approx(1.0)
        model.observe(task, 2.0)
        # 0.5 * 2.0 + 0.5 * 1.0
        assert model.predict(task) == pytest.approx(1.5)
        assert model.observations == 2
        # Non-durations are ignored, never folded in.
        model.observe(task, None)
        model.observe(task, -1.0)
        assert model.predict(task) == pytest.approx(1.5)

    def test_mechanism_class_shares_one_key(self):
        # The EWMA key groups by mechanism *class*: an observation of one
        # tracked mechanism warms the prediction of another.
        model = CostModel(tiny_config())
        model.observe(run_task(mechanism="para"), 3.0)
        assert model.predict(run_task(mechanism="graphene")) \
            == pytest.approx(3.0)
        # But not across classes: blockhammer (gating) stays static.
        static = CostModel(tiny_config()).predict(
            run_task(mechanism="blockhammer"))
        assert model.predict(run_task(mechanism="blockhammer")) \
            == pytest.approx(static)

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "costs.json"
        model = CostModel(tiny_config(), path=path)
        task = run_task()
        model.observe(task, 2.5)
        model.save()
        assert path.exists()
        warm = CostModel(tiny_config(), path=path)
        assert warm.predict(task) == pytest.approx(2.5)
        assert len(warm) == 1

    def test_corrupt_or_foreign_table_falls_back_to_static(self, tmp_path):
        path = tmp_path / "costs.json"
        static = CostModel(tiny_config()).predict(run_task())
        for garbage in ("not json at all", '{"version": 99}', '[1,2,3]'):
            path.write_text(garbage, encoding="utf-8")
            model = CostModel(tiny_config(), path=path)
            assert model.predict(run_task()) == pytest.approx(static)
            assert len(model) == 0


# ---------------------------------------------------------------------- #
# The cost queue: LJF order, chunking, fifo baseline
# ---------------------------------------------------------------------- #
class TestCostQueue:
    def test_longest_job_first(self):
        q = _CostQueue()
        q.put("cheap", cost=0.1)
        q.put("dear", cost=5.0)
        q.put("mid", cost=2.0)
        order = [q.claim(1, 0.75, timeout=0.1)[0] for _ in range(3)]
        assert order == ["dear", "mid", "cheap"]

    def test_cheap_points_chunk_and_expensive_dispatch_solo(self):
        q = _CostQueue()
        q.put("dear", cost=5.0)
        for name in ("a", "b", "c", "d", "e"):
            q.put(name, cost=0.1)
        assert q.claim(4, 0.75, timeout=0.1) == ["dear"]
        assert q.claim(4, 0.75, timeout=0.1) == ["a", "b", "c", "d"]
        assert q.claim(4, 0.75, timeout=0.1) == ["e"]

    def test_solo_requeues_never_rechunk(self):
        q = _CostQueue()
        q.put("requeued", cost=0.1, solo=True)
        q.put("fresh", cost=0.1)
        assert q.claim(4, 0.75, timeout=0.1) == ["requeued"]
        assert q.claim(4, 0.75, timeout=0.1) == ["fresh"]

    def test_fifo_mode_preserves_order_without_chunks(self):
        q = _CostQueue(fifo=True)
        q.put("first", cost=0.1)
        q.put("second", cost=9.0)
        q.put("third", cost=0.1)
        claims = [q.claim(4, 0.75, timeout=0.1) for _ in range(3)]
        assert claims == [["first"], ["second"], ["third"]]

    def test_empty_claim_times_out(self):
        assert _CostQueue().claim(4, 0.75, timeout=0.01) == []


# ---------------------------------------------------------------------- #
# Requeue bound (broker unit — no worker processes)
# ---------------------------------------------------------------------- #
class TestRequeueBound:
    def test_bound_fails_future_with_killers_named(self):
        broker = ClusterBroker(tiny_config(backend="local"))
        try:
            future = broker.submit(run_task())
            for worker in ("worker-1", "worker-2", "worker-3"):
                broker._requeue(run_task(), worker)
                assert not future.done()
            broker._requeue(run_task(), "worker-4")
            assert future.done()
            with pytest.raises(ClusterTaskError) as excinfo:
                future.result()
            message = str(excinfo.value)
            assert "requeue bound" in message
            assert "run[MMLA/para/nrh=64/seed=0]" in message
            for worker in ("worker-1", "worker-2", "worker-3", "worker-4"):
                assert worker in message
            assert broker.requeued_points == 4
        finally:
            broker.stop()

    def test_requeues_are_thread_safe_under_the_lock(self):
        # The counter and the entry mutate under one lock: hammering
        # _requeue from many threads loses no increments (the old code
        # mutated entry.requeues outside the lock).
        import threading

        broker = ClusterBroker(tiny_config(backend="local"),
                               max_requeues=10_000)
        try:
            broker.submit(run_task())
            threads = [
                threading.Thread(
                    target=lambda: [broker._requeue(run_task(), "w")
                                    for _ in range(100)])
                for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert broker.requeued_points == 800
            assert broker._entries[run_task()].requeues == 800
        finally:
            broker.stop()


# ---------------------------------------------------------------------- #
# Poison point and stderr flood (real worker processes)
# ---------------------------------------------------------------------- #
class TestPoisonPoint:
    def test_poison_fails_after_bound_and_other_points_complete(
            self, monkeypatch):
        # Every spawned worker inherits the poison hook: claiming the
        # nrh=64 grid point is instant death, every other point computes
        # normally.  The poisoned future must fail with the evidence
        # after the requeue bound while the good point still completes.
        monkeypatch.setenv(POISON_NRH_ENV, "64")
        with Session(SPEC, backend="cluster", workers=1,
                     cache_dir="") as session:
            good = session.submit("MMLA", "para", 1024, False)
            bad = session.submit("MMLA", "para", 64, False)
            with pytest.raises(ClusterTaskError,
                               match="requeue bound") as excinfo:
                bad.result(timeout=TIMEOUT)
            assert "worker-" in str(excinfo.value)
            stats = good.result(timeout=TIMEOUT)
            broker = cluster_broker(session)
            assert broker.requeued_points >= broker.max_requeues + 1
        with Session(SPEC, jobs=1, cache_dir="") as serial:
            expected = serial.run("MMLA", "para", 1024, False)
        assert dataclasses.asdict(stats) == dataclasses.asdict(expected)


class TestStderrFlood:
    def test_flooding_worker_cannot_stall_the_campaign(self, monkeypatch):
        # 256KiB of startup diagnostics — four times the OS pipe buffer.
        # Before the drain thread, the worker deadlocked mid-print and
        # the sweep hung forever.
        monkeypatch.setenv(STDERR_FLOOD_ENV, str(256 * 1024))
        with Session(SPEC, backend="cluster", workers=1,
                     cache_dir="") as session:
            stats = session.submit("MMLA", "para", 64, False) \
                .result(timeout=TIMEOUT)
        with Session(SPEC, jobs=1, cache_dir="") as serial:
            expected = serial.run("MMLA", "para", 64, False)
        assert dataclasses.asdict(stats) == dataclasses.asdict(expected)


# ---------------------------------------------------------------------- #
# Cost-scheduled heterogeneous mini-sweep (the sched_smoke tier)
# ---------------------------------------------------------------------- #
@pytest.mark.sched_smoke
class TestSchedulingSmoke:
    def test_heterogeneous_sweep_cost_scheduled_bit_identical(self):
        with Session(SPEC, jobs=1, cache_dir="") as serial:
            reference = serial.figure("fig6", nrh=64)
        with Session(SPEC, backend="cluster", workers=2,
                     cache_dir="") as session:
            # A figure sweep is naturally heterogeneous: multi-core grid
            # runs next to single-trace alone baselines.  All tasks are
            # queued before the elastic fleet finishes booting, so the
            # scheduler sees the whole backlog at once.
            figure = session.figure("fig6", nrh=64)
            stats = session.cluster_stats()
        assert figure.as_dict() == reference.as_dict()
        assert stats["scheduling"] == "cost"
        assert stats["scheduled_by_cost"] == stats["results_received"] > 0
        assert stats["chunked_claims"] >= 1
        assert stats["autoscale_events"] >= 1
        assert stats["cost_model"]["observations"] > 0

    def test_learned_costs_persist_next_to_the_run_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with Session(SPEC, backend="cluster", workers=1,
                     cache_dir=cache_dir) as session:
            session.submit("MMLA", "para", 64, False).result(timeout=TIMEOUT)
            broker = cluster_broker(session)
            costs_path = broker.cost_model.path
            assert costs_path is not None
        assert costs_path.exists()
        # A later campaign over the same cache starts warm: the broker's
        # model loads the learned table before any point runs.
        with Session(SPEC, backend="cluster", workers=0,
                     cache_dir=cache_dir) as warm:
            warm_model = cluster_broker(warm).cost_model
            assert len(warm_model) > 0


# ---------------------------------------------------------------------- #
# _LazyFuture.result(timeout) semantics
# ---------------------------------------------------------------------- #
class TestLazyFutureTimeout:
    def test_overrun_raises_after_the_fact_and_caches_the_outcome(self):
        calls = []

        def thunk():
            calls.append(1)
            time.sleep(0.05)
            return 42

        future = _LazyFuture(thunk)
        with pytest.raises(FuturesTimeoutError):
            future.result(timeout=0.001)
        # The thunk ran to completion exactly once; the outcome is
        # cached, so a retry returns it immediately.
        assert future.done()
        assert future.result() == 42
        assert future.result(timeout=0.001) == 42
        assert calls == [1]

    def test_fast_thunk_within_timeout_returns(self):
        assert _LazyFuture(lambda: "ok").result(timeout=30.0) == "ok"

    def test_error_beats_timeout(self):
        def thunk():
            time.sleep(0.05)
            raise ValueError("boom")

        future = _LazyFuture(thunk)
        with pytest.raises(ValueError, match="boom"):
            future.result(timeout=0.001)

    def test_batch_slice_forwards_timeout_to_parent(self):
        def thunk():
            time.sleep(0.05)
            return ["a", "b"]

        parent = _LazyFuture(thunk)
        child = BatchSliceFuture(parent, 1)
        with pytest.raises(FuturesTimeoutError):
            child.result(timeout=0.001)
        assert child.result() == "b"

"""Tests for evaluation metrics and the run-statistics container."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.metrics import (
    geometric_mean,
    harmonic_speedup,
    latency_percentiles,
    max_slowdown,
    normalize,
    percentile,
    speedup_percentage,
    weighted_speedup,
)
from repro.sim.stats import RunStatistics


class TestWeightedSpeedup:
    def test_equal_to_core_count_when_no_interference(self):
        ipc = {0: 1.0, 1: 2.0, 2: 0.5}
        assert weighted_speedup(ipc, ipc) == pytest.approx(3.0)

    def test_halved_ipcs_halve_weighted_speedup(self):
        alone = {0: 1.0, 1: 2.0}
        shared = {0: 0.5, 1: 1.0}
        assert weighted_speedup(shared, alone) == pytest.approx(1.0)

    def test_include_filter_for_benign_threads(self):
        alone = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}
        shared = {0: 0.5, 1: 0.5, 2: 0.5, 3: 0.01}
        assert weighted_speedup(shared, alone, include=[0, 1, 2]) == pytest.approx(1.5)

    def test_missing_alone_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({0: 1.0}, {0: 0.0})
        with pytest.raises(ValueError):
            weighted_speedup({}, {})


class TestMaxSlowdown:
    def test_worst_thread_dominates(self):
        alone = {0: 1.0, 1: 1.0}
        shared = {0: 0.5, 1: 0.25}
        assert max_slowdown(shared, alone) == pytest.approx(4.0)

    def test_no_interference_gives_one(self):
        ipc = {0: 1.0, 1: 2.0}
        assert max_slowdown(ipc, ipc) == pytest.approx(1.0)

    def test_zero_shared_ipc_gives_infinite_slowdown(self):
        assert max_slowdown({0: 0.0}, {0: 1.0}) == float("inf")


class TestOtherMetrics:
    def test_harmonic_speedup_bounds(self):
        alone = {0: 1.0, 1: 1.0}
        shared = {0: 0.5, 1: 1.0}
        hs = harmonic_speedup(shared, alone)
        assert 0.5 < hs < 1.0
        assert harmonic_speedup({0: 0.0}, {0: 1.0}) == 0.0

    def test_percentile_interpolation(self):
        values = [0, 10, 20, 30, 40]
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 40
        assert percentile(values, 0.5) == 20
        assert percentile(values, 0.25) == 10
        assert percentile([7], 0.9) == 7

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_latency_percentiles_keys(self):
        curve = latency_percentiles([1, 2, 3, 4, 5], points=(50, 100))
        assert set(curve) == {50, 100}
        assert curve[100] == 5

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize_and_speedup_percentage(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        assert speedup_percentage(1.5, 1.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)
        with pytest.raises(ValueError):
            speedup_percentage(1.0, 0.0)

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.1, max_value=100),
                           min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.floats(min_value=0, max_value=1000),
                           min_size=1, max_size=50),
           fraction=st.floats(min_value=0, max_value=1))
    def test_percentile_within_range(self, values, fraction):
        p = percentile(values, fraction)
        assert min(values) - 1e-6 <= p <= max(values) + 1e-6


class TestRunStatistics:
    def make(self):
        return RunStatistics(
            cycles=1000,
            ipc_by_thread={0: 1.0, 1: 0.5},
            instructions_by_thread={0: 1000, 1: 500},
            read_latencies=[10, 20, 30, 40],
            latency_by_thread={0: [10, 20], 1: [30, 40]},
            row_hits=30,
            row_misses=10,
        )

    def test_totals(self):
        stats = self.make()
        assert stats.total_instructions == 1500
        assert stats.total_ipc == pytest.approx(1.5)
        assert stats.ipc_of(0) == 1.0
        assert stats.ipc_of(9) == 0.0

    def test_row_hit_rate(self):
        assert self.make().row_hit_rate == pytest.approx(0.75)
        empty = RunStatistics(cycles=1)
        assert empty.row_hit_rate == 0.0

    def test_latency_curves(self):
        stats = self.make()
        all_curve = stats.latency_curve(points=(50, 100))
        assert all_curve[100] == 40
        thread0 = stats.latency_curve([0], points=(100,))
        assert thread0[100] == 20
        missing = stats.latency_curve([5], points=(50,))
        assert missing[50] == 0.0

    def test_mean_latency(self):
        assert self.make().mean_read_latency() == pytest.approx(25.0)
        assert RunStatistics(cycles=1).mean_read_latency() == 0.0

    def test_summary_keys(self):
        summary = self.make().summary()
        assert {"cycles", "total_ipc", "preventive_actions"} <= set(summary)

    def test_energy_defaults_to_zero(self):
        assert self.make().energy_mj == 0.0

"""The lockstep batch engine and the sweep layer's batch admission.

Contract pinned here (``pytest -m batch_smoke`` for the headline check):
a figure column computed with ``engine="batch"`` — where the sweep layer
coalesces compatible grid points into multi-lane lockstep runs — must be
bit-identical to the same column under the serial ``fast`` engine, and
the coalescing/splitting plumbing (task grouping, list-valued futures
sliced back to per-point handles, per-point cache entries) must be
invisible to every consumer.  Engine-level bit-identity of the lockstep
kernel itself is pinned by ``tests/test_engine_equivalence.py`` and the
``fuzz_smoke`` corpus (tri-engine + batched-vs-solo differentials).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.executor import (
    BATCH_GROUP_LANES,
    BatchSliceFuture,
    RunTask,
    TASK_ALONE,
    TASK_BATCH,
    TASK_RUN,
    _LazyFuture,
    coalesce_batch_tasks,
)
from repro.api import ExperimentSpec, Session
from repro.sim.batch import BatchSimulator
from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.simulator import Simulator
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import make_mix


def _tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        sim_cycles=2_000,
        entries_per_core=800,
        attacker_entries=1_000,
        nrh_sweep=(1024, 64),
        attack_mixes=("MMLA",),
        benign_mixes=("MMLL",),
        mechanisms=("para", "rfm"),
        seeds=(0,),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def _run_task(mix="MMLA", seed=0, mechanism="para", nrh=64, bh=False):
    return RunTask(kind=TASK_RUN, mix_name=mix, seed=seed,
                   mechanism=mechanism, nrh=nrh, breakhammer=bh)


# ---------------------------------------------------------------------- #
# The headline contract
# ---------------------------------------------------------------------- #
@pytest.mark.batch_smoke
def test_batched_figure_column_bit_identical_to_serial_fast():
    """One figure column, batched admission vs serial fast runs.

    ``engine="batch"`` routes the whole pending grid through coalesced
    lockstep tasks (mechanisms, thresholds, and the BreakHammer toggle
    vary across lanes of one batch); every derived figure series must
    come out identical to the reference serial-fast sweep.
    """

    with Session(_tiny_spec(), jobs=1, cache_dir="", engine="fast") as ref:
        reference = ref.figure("fig6", nrh=64)
        ref_runs = ref.runs_executed
    with Session(_tiny_spec(), jobs=1, cache_dir="", engine="batch") as bat:
        batched = bat.figure("fig6", nrh=64)
        # The same grid points executed (batching changes how, not what).
        assert bat.runs_executed == ref_runs
    assert batched.as_dict() == reference.as_dict()


# ---------------------------------------------------------------------- #
# Coalescing
# ---------------------------------------------------------------------- #
class TestCoalesce:
    def test_groups_by_mix_and_preserves_order(self):
        tasks = [
            _run_task("MMLA", mechanism="para"),
            _run_task("MMLL", mechanism="none", nrh=1024),
            _run_task("MMLA", mechanism="rfm", bh=True),
            _run_task("MMLA", mechanism="para", seed=1),
        ]
        out = coalesce_batch_tasks(tasks)
        assert [t.kind for t in out] == [TASK_BATCH, TASK_RUN]
        # Seed, mechanism, nrh, breakhammer all vary within the group.
        assert out[0].group == (tasks[0], tasks[2], tasks[3])
        assert out[1] == tasks[1]

    def test_singletons_stay_plain_runs(self):
        tasks = [_run_task("MMLA"), _run_task("HHMA")]
        assert coalesce_batch_tasks(tasks) == tasks

    def test_alone_tasks_pass_through(self):
        alone = RunTask(kind=TASK_ALONE, mix_name="MMLA", trace_index=1)
        tasks = [_run_task(), alone, _run_task(bh=True)]
        out = coalesce_batch_tasks(tasks)
        # The group claims its first-appearance position; the alone task
        # passes through untouched at its own position.
        assert [t.kind for t in out] == [TASK_BATCH, TASK_ALONE]
        assert out[0].group == (tasks[0], tasks[2])
        assert out[1] is alone

    def test_group_size_cap_splits_chunks(self):
        tasks = [_run_task(nrh=n) for n in range(BATCH_GROUP_LANES + 3)]
        out = coalesce_batch_tasks(tasks)
        assert [t.kind for t in out] == [TASK_BATCH, TASK_BATCH]
        assert len(out[0].group) == BATCH_GROUP_LANES
        assert len(out[1].group) == 3


# ---------------------------------------------------------------------- #
# Futures plumbing
# ---------------------------------------------------------------------- #
def test_batch_slice_future_indexes_parent_result():
    parent = _LazyFuture(lambda: ["a", "b", "c"])
    slices = [BatchSliceFuture(parent, i) for i in range(3)]
    assert not slices[1].done()
    assert slices[2].result() == "c"
    assert slices[0].result() == "a"
    assert slices[1].done()


def test_run_batch_group_serves_cached_members_without_resimulating():
    session = Session(_tiny_spec(), jobs=1, cache_dir="", engine="batch")
    runner = session.runner
    warm = _run_task("MMLA", mechanism="para")
    cold = _run_task("MMLA", mechanism="rfm", bh=True)
    warm_stats = runner.run(warm.mix_name, warm.mechanism, warm.nrh,
                            warm.breakhammer)
    executed = runner.runs_executed
    group_stats = runner.run_batch_group((warm, cold))
    # Only the cold member simulated; the warm one came from cache.
    assert runner.runs_executed == executed + 1
    assert dataclasses.asdict(group_stats[0]) == \
        dataclasses.asdict(warm_stats)
    assert dataclasses.asdict(group_stats[1]) == dataclasses.asdict(
        runner.run(cold.mix_name, cold.mechanism, cold.nrh, cold.breakhammer)
    )


# ---------------------------------------------------------------------- #
# The vectorised kernel really engages
# ---------------------------------------------------------------------- #
def test_kernel_predicts_without_mispredicting():
    config = SystemConfig.fast_profile(mitigation="graphene", nrh=64,
                                       sim_cycles=2_000)
    mix = make_mix("MMLA", device=config.device, mapping=config.mapping,
                   entries_per_core=800, attacker_entries=1_000, seed=0,
                   attacker_config=AttackerConfig(entries=1_000, seed=0))
    sims = [
        Simulator(config.with_(breakhammer_enabled=bh), mix.traces,
                  SimulationConfig(max_cycles=2_000, engine="fast"),
                  attacker_threads=mix.attacker_threads)
        for bh in (False, True)
    ]
    batch = BatchSimulator(sims)
    batch.run()
    scan = batch.scan_stats()
    assert scan["eligible_lanes"] == 2
    assert scan["predictions_used"] > 0
    assert scan["mispredictions"] == 0

"""Regression tests for the fast-forward PR's accounting bugfixes.

Covers the three latent bugs fixed alongside the event-driven engine:

* BreakHammer's window clock advanced at most one window per ``tick`` call,
  so jumping the simulation over several boundaries lost windows;
* warmup cycles were subtracted from the IPC denominator but their work
  stayed in every counter, inflating IPC/MPKI whenever ``warmup_cycles > 0``;
* the uncached-MSHR ``merged_accesses = -1`` sentinel was clobbered by the
  first merge, so a cached load merging into an uncached fetch was woken
  without the line ever being installed in the LLC.

Plus the maintained per-thread MSHR occupancy counters that replaced the
O(entries) scan.
"""

from __future__ import annotations

import random

from repro.core.breakhammer import BreakHammer, BreakHammerConfig
from repro.cpu.mshr import MshrFile
from repro.cpu.trace import Trace, TraceEntry
from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.simulator import Simulator
from repro.sim.system import System
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import make_mix


class TestBreakHammerWindowClock:
    def _breakhammer(self) -> BreakHammer:
        # 1000-cycle throttling window (1 ns cycle, 1e-3 ms window).
        return BreakHammer(
            num_threads=2,
            config=BreakHammerConfig(window_ms=1e-3),
            cycle_time_ns=1.0,
        )

    def test_catches_up_over_multiple_windows(self):
        bh = self._breakhammer()
        assert bh.window_cycles == 1000
        ended = bh.tick(3_500)  # jumped over the 1000/2000/3000 boundaries
        assert ended == 3
        assert bh.stats.windows_elapsed == 3
        assert bh.next_event_cycle() == 4_000

    def test_no_window_ends_before_boundary(self):
        bh = self._breakhammer()
        assert bh.tick(999) == 0
        assert bh.tick(1_000) == 1
        assert bh.tick(1_001) == 0
        assert bh.stats.windows_elapsed == 1


class TestWarmupAccounting:
    def test_statistics_exclude_warmup_work(self):
        """Counters must describe only the post-warmup interval."""

        cycles, warmup = 4_000, 1_500
        config = SystemConfig.fast_profile(
            mitigation="para", nrh=256, sim_cycles=cycles
        )
        mix = make_mix(
            "MMLL", device=config.device, mapping=config.mapping,
            entries_per_core=2_000, attacker_entries=2_000, seed=0,
            attacker_config=AttackerConfig(entries=2_000, seed=0),
        )
        simulator = Simulator(
            config, mix.traces,
            SimulationConfig(max_cycles=cycles, warmup_cycles=warmup),
        )
        stats = simulator.run().stats

        # Replay the identical (deterministic) simulation by hand, sampling
        # the raw counters at the warmup boundary and at the end.
        replay = Simulator(config, mix.traces,
                           SimulationConfig(max_cycles=cycles))
        system = replay.system
        for cycle in range(1, warmup + 1):
            system.tick(cycle)
        instructions_at_warmup = {
            core.core_id: core.stats.retired_instructions
            for core in system.cores
        }
        activations_at_warmup = system.controller.stats.activations
        latencies_at_warmup = len(system.controller.stats.read_latencies)
        for cycle in range(warmup + 1, cycles + 1):
            system.tick(cycle)

        expected_instructions = {
            core.core_id: (
                core.stats.retired_instructions
                - instructions_at_warmup[core.core_id]
            )
            for core in system.cores
        }
        assert stats.cycles == cycles
        assert stats.instructions_by_thread == expected_instructions
        assert stats.activations == (
            system.controller.stats.activations - activations_at_warmup
        )
        assert stats.read_latencies == \
            system.controller.stats.read_latencies[latencies_at_warmup:]
        effective = cycles - warmup
        for thread, instructions in expected_instructions.items():
            assert stats.ipc_by_thread[thread] == instructions / effective

    def test_zero_warmup_unchanged(self):
        """warmup_cycles=0 must keep the historical full-run semantics."""

        cycles = 2_000
        config = SystemConfig.fast_profile(sim_cycles=cycles)
        mix = make_mix(
            "MMLL", device=config.device, mapping=config.mapping,
            entries_per_core=1_000, attacker_entries=1_000, seed=0,
            attacker_config=AttackerConfig(entries=1_000, seed=0),
        )
        simulator = Simulator(config, mix.traces,
                              SimulationConfig(max_cycles=cycles))
        stats = simulator.run().stats
        for core in simulator.system.cores:
            assert stats.instructions_by_thread[core.core_id] == \
                core.stats.retired_instructions
            assert stats.ipc_by_thread[core.core_id] == \
                core.stats.retired_instructions / cycles

    def test_engines_agree_with_warmup(self):
        import dataclasses

        cycles, warmup = 3_000, 1_000
        config = SystemConfig.fast_profile(mitigation="graphene", nrh=64,
                                           sim_cycles=cycles)
        mix = make_mix(
            "MMLA", device=config.device, mapping=config.mapping,
            entries_per_core=1_500, attacker_entries=2_000, seed=0,
            attacker_config=AttackerConfig(entries=2_000, seed=0),
        )
        results = {}
        for engine in ("cycle", "fast"):
            simulator = Simulator(
                config, mix.traces,
                SimulationConfig(max_cycles=cycles, warmup_cycles=warmup,
                                 engine=engine),
                attacker_threads=mix.attacker_threads,
            )
            results[engine] = dataclasses.asdict(simulator.run().stats)
        assert results["cycle"] == results["fast"]


class TestUncachedMshrEntries:
    ADDRESS = 1 << 14

    def _system(self, bypass_second_core: bool) -> System:
        config = SystemConfig.fast_profile(sim_cycles=2_000).with_(num_cores=2)
        uncached_trace = Trace(
            [TraceEntry(0, self.ADDRESS, False, bypass_cache=True)],
            name="uncached", loop=False,
        )
        second = Trace(
            [TraceEntry(0, self.ADDRESS, False,
                        bypass_cache=bypass_second_core)],
            name="second", loop=False,
        )
        return System(config, [uncached_trace, second])

    def _run_to_completion(self, system: System) -> None:
        cycle = 0
        while True:
            cycle += 1
            system.tick(cycle)
            if cycle > 10 and system.outstanding_work() == 0:
                break
            assert cycle < 5_000, "simulation did not drain"

    def test_pure_uncached_fetch_not_installed(self):
        system = self._system(bypass_second_core=True)
        self._run_to_completion(system)
        assert not system.llc.probe(self.ADDRESS)
        # Both cores were woken regardless.
        assert all(core.outstanding_loads == 0 for core in system.cores)

    def test_cached_merge_into_uncached_fetch_installs_line(self):
        system = self._system(bypass_second_core=False)
        self._run_to_completion(system)
        # The cached requester merged into the uncached fetch; its fill must
        # land in the LLC (the old sentinel lost this information).
        assert system.llc.probe(self.ADDRESS)
        assert all(core.outstanding_loads == 0 for core in system.cores)

    def test_merge_flag_semantics(self):
        mshrs = MshrFile(4, num_threads=2)
        entry = mshrs.allocate(0x40, 0, cycle=1, uncached=True)
        assert entry is not None and entry.uncached
        # An uncached merge keeps the entry uncached.
        mshrs.allocate(0x40, 1, cycle=2, uncached=True)
        assert entry.uncached
        # One cacheable merge is enough to make the fill installable.
        mshrs.allocate(0x40, 1, cycle=3, uncached=False)
        assert not entry.uncached
        assert entry.merged_accesses == 2


class TestMshrOccupancyCounters:
    def test_counters_match_brute_force_scan(self):
        rng = random.Random(0)
        mshrs = MshrFile(8, num_threads=3)
        lines = [line * 64 for line in range(12)]
        for step in range(2_000):
            line = rng.choice(lines)
            if rng.random() < 0.6:
                mshrs.allocate(line, rng.randrange(3), cycle=step)
            else:
                mshrs.release(line)
            for thread in range(3):
                brute = sum(
                    1 for entry in mshrs._entries.values()
                    if entry.thread_id == thread
                )
                assert mshrs.outstanding_for(thread) == brute

    def test_quota_still_enforced(self):
        mshrs = MshrFile(8, num_threads=2)
        mshrs.set_quota(0, 2)
        assert mshrs.allocate(0x00, 0, cycle=0) is not None
        assert mshrs.allocate(0x40, 0, cycle=0) is not None
        assert not mshrs.can_allocate(0)
        assert mshrs.allocate(0x80, 0, cycle=0) is None
        assert mshrs.stats_quota_rejections == 1
        # Releasing frees quota headroom again.
        mshrs.release(0x00)
        assert mshrs.can_allocate(0)

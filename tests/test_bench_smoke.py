"""Bench smoke: one representative point of each figure sweep.

Tier-1-budget coverage of the full experiment surface: a micro-scale
harness profile with a **parallel (jobs=2) sweep executor** computes one
grid point of every figure family — motivation (fig. 2), per-mix attack
(figs. 6/7), N_RH scaling (figs. 8/9/10/12/18), latency percentiles
(fig. 11), all-benign (figs. 13/15), and the headline numbers — so the
process-pool path, the prefetch plumbing, and every figure method are
exercised on each tier-1 run.  Select just these checks with
``pytest -m bench_smoke``.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, Session

pytestmark = pytest.mark.bench_smoke

#: One point per sweep dimension: a single attack mix, a single benign mix,
#: one mechanism, one low threshold (plus the nrh_default baseline).
_SMOKE_SPEC = ExperimentSpec(
    sim_cycles=1_500,
    entries_per_core=600,
    attacker_entries=800,
    nrh_sweep=(64,),
    attack_mixes=("MMLA",),
    benign_mixes=("MMLL",),
    mechanisms=("para",),
    seeds=(0,),
)


@pytest.fixture(scope="module")
def smoke_runner():
    # jobs=2 / cache_dir="" keep it hermetic even when REPRO_JOBS or
    # REPRO_CACHE_DIR are exported.
    with Session(_SMOKE_SPEC, jobs=2, cache_dir="") as session:
        assert session.runner.jobs == 2
        yield session.runner


def test_motivation_point(smoke_runner):
    figure = smoke_runner.figure2(mechanisms=["para"])
    assert figure.get("para").values[0] > 0


def test_attack_per_mix_points(smoke_runner):
    fig6 = smoke_runner.figure6()
    fig7 = smoke_runner.figure7()
    assert fig6.get("para+BH").values[-1] > 0
    assert fig7.get("para+BH").values[-1] > 0


def test_nrh_scaling_points(smoke_runner):
    fig8 = smoke_runner.figure8()
    assert {"para", "para+BH"} <= set(fig8.labels())
    fig10 = smoke_runner.figure10()
    assert fig10.get("para").values  # normalised action counts exist


def test_latency_and_energy_points(smoke_runner):
    fig11 = smoke_runner.figure11(points=(50, 100))
    for series in fig11.series.values():
        assert series.values == sorted(series.values)
    fig12 = smoke_runner.figure12()
    assert all(v > 0 for v in fig12.get("para").values)


def test_benign_points(smoke_runner):
    fig13 = smoke_runner.figure13()
    assert fig13.get("para+BH").values[-1] > 0
    fig15 = smoke_runner.figure15()
    assert fig15.get("para+BH").values


def test_blockhammer_and_headline_points(smoke_runner):
    fig18 = smoke_runner.figure18()
    assert "blockhammer" in fig18.series
    numbers = smoke_runner.headline_numbers()
    assert numbers["mean_benign_speedup"] > 0

"""Columnar trace persistence: round-trip properties and header hygiene.

``dump_columnar``/``load_columnar`` is the binary format sweep workers and
trace suites rely on; the property pinned here is that *any* constructible
trace — randomly generated columns, single-entry traces, extreme bubble and
address values, unicode names, both loop flags — survives a disk round-trip
with every column bit-identical.  Empty traces are rejected at every
boundary (a trace must contain at least one entry), and the header's
endianness byte really round-trips files written on an opposite-endian
machine.  Truncated and foreign files raise ``ValueError`` instead of
silently yielding short traces.
"""

from __future__ import annotations

import random
import struct
import sys
from array import array

import pytest

from repro.cpu.trace import Trace, TraceEntry
from repro.workloads.attacker import generate_attacker_trace
from repro.workloads.dma import DmaConfig, generate_dma_trace
from repro.workloads.synthetic import generate_intensity_trace


def random_trace(seed: int, entries: int) -> Trace:
    rng = random.Random(seed)
    bubbles = [rng.randrange(0, 500) for _ in range(entries)]
    addresses = [rng.randrange(0, 1 << 48) for _ in range(entries)]
    flags = [rng.randrange(0, 4) for _ in range(entries)]
    return Trace.from_columns(bubbles, addresses, flags,
                              name=f"random_{seed}",
                              loop=bool(seed % 2))


def assert_identical(lhs: Trace, rhs: Trace) -> None:
    lhs_bubbles, lhs_addresses, lhs_flags = lhs.columns
    rhs_bubbles, rhs_addresses, rhs_flags = rhs.columns
    assert list(rhs_bubbles) == list(lhs_bubbles)
    assert list(rhs_addresses) == list(lhs_addresses)
    assert bytes(rhs_flags) == bytes(lhs_flags)
    assert rhs.name == lhs.name
    assert rhs.loop == lhs.loop


class TestRoundTripProperty:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_traces_round_trip(self, tmp_path, seed):
        rng = random.Random(1_000 + seed)
        trace = random_trace(seed, entries=rng.randrange(1, 400))
        path = tmp_path / f"trace_{seed}.bin"
        trace.dump_columnar(path)
        assert_identical(trace, Trace.load_columnar(path))

    def test_single_entry_trace(self, tmp_path):
        trace = Trace([TraceEntry(0, 0x40, is_write=True)], name="one",
                      loop=False)
        path = tmp_path / "one.bin"
        trace.dump_columnar(path)
        loaded = Trace.load_columnar(path)
        assert_identical(trace, loaded)
        assert len(loaded) == 1
        assert loaded[0] == TraceEntry(0, 0x40, is_write=True)

    def test_extreme_values_round_trip(self, tmp_path):
        trace = Trace.from_columns(
            [0, 2**62], [0, 2**63 - 1], [0, 3], name="extremes")
        path = tmp_path / "extremes.bin"
        trace.dump_columnar(path)
        assert_identical(trace, Trace.load_columnar(path))

    def test_unicode_name_round_trips(self, tmp_path):
        trace = Trace.from_columns([1], [64], [0], name="trace-ünïcødé-⚙")
        path = tmp_path / "named.bin"
        trace.dump_columnar(path)
        assert Trace.load_columnar(path).name == "trace-ünïcødé-⚙"

    @pytest.mark.parametrize("generator", [
        lambda: generate_intensity_trace("H", seed=3, entries=300),
        lambda: generate_attacker_trace(),
        lambda: generate_dma_trace(DmaConfig(entries=250, seed=5)),
    ], ids=["benign", "attacker", "dma"])
    def test_generated_workloads_round_trip(self, tmp_path, generator):
        trace = generator()
        path = tmp_path / "workload.bin"
        trace.dump_columnar(path)
        assert_identical(trace, Trace.load_columnar(path))


class TestEmptyTraces:
    """Empty traces are rejected consistently at every construction path."""

    def test_constructor_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one entry"):
            Trace([])

    def test_from_columns_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one entry"):
            Trace.from_columns([], [], [])

    def test_load_rejects_crafted_zero_entry_file(self, tmp_path):
        # dump_columnar cannot produce this file (empty traces cannot be
        # constructed), so craft the bytes by hand.
        name = b"empty"
        blob = (b"RTRC"
                + struct.pack("<BBBH", 1, 1,
                              1 if sys.byteorder == "little" else 0,
                              len(name))
                + name + struct.pack("<Q", 0))
        path = tmp_path / "empty.bin"
        path.write_bytes(blob)
        with pytest.raises(ValueError, match="at least one entry"):
            Trace.load_columnar(path)


class TestHeaderValidation:
    def _dump(self, tmp_path, entries=16) -> bytes:
        trace = random_trace(7, entries)
        path = tmp_path / "base.bin"
        trace.dump_columnar(path)
        return path.read_bytes()

    def test_cross_endian_file_loads_identically(self, tmp_path):
        """A file written on an opposite-endian machine must round-trip."""

        trace = random_trace(11, 64)
        bubbles, addresses, flags = trace.columns
        swapped_bubbles = array(bubbles.typecode, bubbles)
        swapped_bubbles.byteswap()
        swapped_addresses = array(addresses.typecode, addresses)
        swapped_addresses.byteswap()
        name = trace.name.encode("utf-8")
        foreign_endian = 0 if sys.byteorder == "little" else 1
        blob = (b"RTRC"
                + struct.pack("<BBBH", 1, 1 if trace.loop else 0,
                              foreign_endian, len(name))
                + name + struct.pack("<Q", len(trace))
                + swapped_bubbles.tobytes()
                + swapped_addresses.tobytes()
                + bytes(flags))
        path = tmp_path / "foreign.bin"
        path.write_bytes(blob)
        assert_identical(trace, Trace.load_columnar(path))

    def test_native_endian_flag_matches_byteorder(self, tmp_path):
        data = self._dump(tmp_path)
        _, _, little_endian, _ = struct.unpack_from("<BBBH", data, 4)
        assert bool(little_endian) == (sys.byteorder == "little")

    def test_bad_magic_rejected(self, tmp_path):
        data = self._dump(tmp_path)
        path = tmp_path / "bad_magic.bin"
        path.write_bytes(b"NOPE" + data[4:])
        with pytest.raises(ValueError, match="not a columnar trace"):
            Trace.load_columnar(path)

    def test_unknown_version_rejected(self, tmp_path):
        data = bytearray(self._dump(tmp_path))
        data[4] = 99
        path = tmp_path / "bad_version.bin"
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            Trace.load_columnar(path)

    def test_truncation_inside_header_rejected(self, tmp_path):
        """Valid magic but a cut inside the 9-byte header must raise the
        documented ValueError, not struct.error."""

        path = tmp_path / "header_cut.bin"
        path.write_bytes(b"RTRC\x01\x01")
        with pytest.raises(ValueError, match="truncated"):
            Trace.load_columnar(path)

    @pytest.mark.parametrize("keep_fraction", [0.15, 0.5, 0.95])
    def test_truncated_file_rejected(self, tmp_path, keep_fraction):
        data = self._dump(tmp_path)
        path = tmp_path / "truncated.bin"
        path.write_bytes(data[: int(len(data) * keep_fraction)])
        with pytest.raises(ValueError, match="truncated"):
            Trace.load_columnar(path)

    def test_truncation_at_column_boundary_rejected(self, tmp_path):
        """Cutting at an 8-byte multiple yields well-formed *short* arrays;
        the per-column length check must still refuse the file."""

        trace = random_trace(13, 32)
        path = tmp_path / "aligned.bin"
        trace.dump_columnar(path)
        data = path.read_bytes()
        header_size = 9 + len(trace.name.encode("utf-8")) + 8
        # Keep the header plus exactly half the bubble column.
        path.write_bytes(data[: header_size + 16 * 8])
        with pytest.raises(ValueError, match="truncated"):
            Trace.load_columnar(path)

"""Integration tests for the memory controller."""

import pytest

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest, RequestType, read_request, write_request
from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.commands import CommandType
from repro.dram.config import DeviceConfig
from repro.mitigations.base import NoMitigation
from repro.mitigations.para import Para
from repro.mitigations.registry import create_mechanism


@pytest.fixture()
def controller():
    cfg = DeviceConfig.tiny()
    return MemoryController(cfg)


def run_until_complete(controller, requests, max_cycles=50_000):
    completed = []
    for req in requests:
        assert controller.enqueue(req)
    cycle = controller.cycle
    while len(completed) < len(requests) and max_cycles > 0:
        cycle += 1
        max_cycles -= 1
        completed.extend(controller.tick(cycle))
    return completed, cycle


class TestBasicService:
    def test_single_read_completes(self, controller):
        req = read_request(0, thread_id=0)
        completed, _ = run_until_complete(controller, [req])
        assert completed == [req]
        assert req.completion_cycle is not None
        assert req.latency > 0
        assert controller.stats.reads_completed == 1
        assert controller.stats.activations == 1

    def test_write_completes(self, controller):
        req = write_request(128, thread_id=1)
        completed, _ = run_until_complete(controller, [req])
        assert completed == [req]
        assert controller.stats.writes_completed == 1

    def test_row_hit_faster_than_row_miss(self, controller):
        mapper = controller.mapper
        base = mapper.address_for_row(0, 0, 0, 0, 5, column=0)
        same_row = mapper.address_for_row(0, 0, 0, 0, 5, column=1)
        other_row = mapper.address_for_row(0, 0, 0, 0, 9, column=0)
        first = read_request(base, thread_id=0)
        hit = read_request(same_row, thread_id=0)
        completed, _ = run_until_complete(controller, [first, hit])
        hit_latency = hit.completion_cycle - first.completion_cycle

        controller2 = MemoryController(DeviceConfig.tiny())
        first2 = read_request(base, thread_id=0)
        conflict = read_request(other_row, thread_id=0)
        run_until_complete(controller2, [first2, conflict])
        conflict_latency = conflict.completion_cycle - first2.completion_cycle
        assert hit_latency < conflict_latency

    def test_queue_rejection_when_full(self):
        cfg = DeviceConfig.tiny()
        controller = MemoryController(cfg, read_queue_size=2)
        assert controller.enqueue(read_request(0))
        assert controller.enqueue(read_request(64))
        assert not controller.enqueue(read_request(128))
        assert controller.can_accept(RequestType.WRITE)
        assert not controller.can_accept(RequestType.READ)

    def test_requests_to_different_banks_overlap(self, controller):
        mapper = controller.mapper
        reqs = [
            read_request(mapper.address_for_row(0, 0, bg, ba, 3), thread_id=0)
            for bg in range(2) for ba in range(2)
        ]
        completed, cycles = run_until_complete(controller, reqs)
        assert len(completed) == 4
        # Bank-level parallelism: four conflicting-row accesses to four banks
        # should finish far faster than four serialized row cycles.
        serial = 4 * controller.timing.trc
        assert cycles < serial

    def test_activation_attribution_per_thread(self, controller):
        mapper = controller.mapper
        reqs = [
            read_request(mapper.address_for_row(0, 0, 0, 0, row), thread_id=row % 2)
            for row in range(4)
        ]
        run_until_complete(controller, reqs)
        per_thread = controller.stats.activations_by_thread
        assert sum(per_thread.values()) == controller.stats.activations
        assert set(per_thread) == {0, 1}


class TestRefreshBehaviour:
    def test_periodic_refresh_issued(self):
        cfg = DeviceConfig.tiny()
        controller = MemoryController(cfg)
        t = cfg.timing_cycles()
        for cycle in range(1, 3 * t.trefi):
            controller.tick(cycle)
        assert controller.stats.refreshes >= 2

    def test_refresh_continues_under_load(self):
        cfg = DeviceConfig.tiny()
        controller = MemoryController(cfg)
        mapper = controller.mapper
        t = cfg.timing_cycles()
        cycle = 0
        row = 0
        while cycle < 3 * t.trefi:
            cycle += 1
            if controller.can_accept(RequestType.READ) and cycle % 7 == 0:
                row += 1
                controller.enqueue(read_request(
                    mapper.address_for_row(0, 0, row % 2, row % 2, row % 64),
                    thread_id=0,
                ))
            controller.tick(cycle)
        assert controller.stats.refreshes >= 2


class TestMitigationIntegration:
    def test_para_triggers_preventive_actions(self):
        cfg = DeviceConfig.tiny()
        mitigation = Para(cfg, nrh=8, probability=1.0)
        controller = MemoryController(cfg, mitigation=mitigation)
        mapper = controller.mapper
        reqs = [
            read_request(mapper.address_for_row(0, 0, 0, 0, row), thread_id=0)
            for row in range(5)
        ]
        run_until_complete(controller, reqs)
        controller.drain()
        assert controller.stats.preventive_actions >= 5
        assert controller.stats.preventive_commands >= 5
        assert controller.channel.stats()["preventive_refreshes"] >= 5

    def test_observer_sees_activations_and_actions(self):
        class Recorder:
            def __init__(self):
                self.activations = []
                self.actions = []

            def on_activation(self, coord, thread, cycle):
                self.activations.append((coord.row, thread))

            def on_preventive_action(self, action, cycle):
                self.actions.append(action)

        cfg = DeviceConfig.tiny()
        mitigation = Para(cfg, nrh=8, probability=1.0)
        controller = MemoryController(cfg, mitigation=mitigation)
        recorder = Recorder()
        controller.register_observer(recorder)
        mapper = controller.mapper
        reqs = [
            read_request(mapper.address_for_row(0, 0, 0, 0, row), thread_id=2)
            for row in range(3)
        ]
        run_until_complete(controller, reqs)
        controller.drain()
        assert len(recorder.activations) == 3
        assert all(thread == 2 for _, thread in recorder.activations)
        assert len(recorder.actions) >= 3

    def test_blocked_activation_counted_with_blockhammer(self):
        cfg = DeviceConfig.tiny()
        mitigation = create_mechanism("blockhammer", cfg, nrh=16)
        controller = MemoryController(cfg, mitigation=mitigation)
        mapper = controller.mapper
        # Hammer two rows of one bank far past the blacklist threshold.
        reqs = []
        for i in range(40):
            row = 5 if i % 2 == 0 else 7
            reqs.append(read_request(
                mapper.address_for_row(0, 0, 0, 0, row, column=i % 16),
                thread_id=0,
            ))
        run_until_complete(controller, reqs, max_cycles=200_000)
        assert controller.stats.blocked_activations > 0
        assert mitigation.delayed_activations > 0

    def test_snapshot_structure(self, controller):
        run_until_complete(controller, [read_request(0, thread_id=0)])
        snap = controller.snapshot()
        assert snap["reads_completed"] == 1
        assert "mitigation" in snap and "channel" in snap

    def test_drain_empties_pending_work(self):
        cfg = DeviceConfig.tiny()
        controller = MemoryController(cfg, mitigation=NoMitigation(cfg))
        for i in range(8):
            controller.enqueue(read_request(i * 4096, thread_id=0))
        controller.drain()
        assert controller.pending_requests == 0

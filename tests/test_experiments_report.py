"""Tests for the experiment harness, figure containers, and text reports."""

import pytest

from repro.analysis.figures import ComparisonEntry, FigureData, TableData
from repro.analysis.report import (
    figure_summary,
    render_comparisons,
    render_figure,
    render_table,
)
from repro.api import ExperimentSpec, Session


@pytest.fixture(scope="module")
def runner():
    """A shared smoke-scale runner (module-scoped: runs are memoised)."""

    return Session(ExperimentSpec.smoke(), jobs=1, cache_dir="").runner


class TestFigureData:
    def test_add_series_validates_length(self):
        figure = FigureData("f", "t", "x", "y", [1, 2, 3])
        figure.add_series("a", [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            figure.add_series("b", [1.0])

    def test_rows_and_lookup(self):
        figure = FigureData("f", "t", "nrh", "y", [64, 128])
        figure.add_series("mech", [0.5, 0.6])
        rows = figure.as_rows()
        assert rows[0] == {"nrh": 64, "mech": 0.5}
        assert figure.get("mech").mean == pytest.approx(0.55)
        assert figure.labels() == ["mech"]

    def test_as_dict_snapshots(self):
        figure = FigureData("f", "t", "nrh", "y", [64])
        figure.add_series("mech", [0.5])
        snap = figure.as_dict()
        assert snap["series"] == {"mech": [0.5]}
        assert snap["x_values"] == [64]
        table = TableData("t", "title", ["a"])
        table.add_row({"a": 1})
        assert table.as_dict()["rows"] == [{"a": 1}]

    def test_table_validates_columns(self):
        table = TableData("t", "title", ["a", "b"])
        table.add_row({"a": 1, "b": 2})
        with pytest.raises(ValueError):
            table.add_row({"a": 1})
        assert table.column("a") == [1]
        assert len(table) == 1


class TestReportRendering:
    def test_render_table(self):
        table = TableData("t", "My Table", ["name", "value"], notes="hello")
        table.add_row({"name": "x", "value": 1.2345})
        text = render_table(table)
        assert "My Table" in text
        assert "1.234" in text
        assert "note: hello" in text

    def test_render_figure(self):
        figure = FigureData("figX", "Title", "nrh", "y", [64, 128])
        figure.add_series("para", [1.0, 2.0])
        text = render_figure(figure)
        assert "figX" in text and "para" in text and "2.000" in text

    def test_render_comparisons(self):
        entries = [ComparisonEntry("fig8", "speedup", "1.9x", "1.4x", True)]
        text = render_comparisons(entries)
        assert "fig8" in text and "yes" in text

    def test_figure_summary(self):
        figure = FigureData("f", "t", "x", "y", [1])
        figure.add_series("s", [3.0])
        assert figure_summary(figure) == {"s": 3.0}


class TestAnalyticalExperiments:
    """Experiments that need no simulation (cheap, exact)."""

    def test_figure5_matches_paper_observations(self, runner):
        figure = runner.figure5()
        assert len(figure.series) == 10
        series_065 = figure.get("TH_outlier=0.65")
        # At 50% attacker threads the bound is ≈ 4.71.
        idx_50 = figure.x_values.index(50)
        assert series_065.values[idx_50] == pytest.approx(4.71, abs=0.05)

    def test_table1_lists_components(self, runner):
        table = runner.table1()
        components = table.column("component")
        assert {"processor", "llc", "dram", "mitigation"} <= set(components)

    def test_table2_has_paper_and_scaled_values(self, runner):
        table = runner.table2()
        params = {row["parameter"]: row for row in table.rows}
        assert params["TH_threat"]["paper_value"] == 32.0
        assert params["TH_outlier"]["paper_value"] == 0.65
        assert params["P_newsuspect"]["paper_value"] == 10

    def test_table3_and_paper_reference(self, runner):
        table = runner.table3()
        assert table.rows[-1]["Workload"] == "Average"
        assert all(row["RBMPKI"] >= 0 for row in table.rows)
        paper = runner.paper_table3()
        assert len(paper) == 8

    def test_hardware_complexity_table(self, runner):
        table = runner.hardware_complexity()
        values = {row["quantity"]: row["value"] for row in table.rows}
        assert values["fits_under_trrd"] is True
        assert values["bits_per_thread"] == 82


class TestSimulationExperiments:
    """Smoke-scale simulated experiments (shared, memoised runner)."""

    def test_run_caching(self, runner):
        before = runner.runs_executed
        runner.run("MMLA", "para", 64, False)
        mid = runner.runs_executed
        runner.run("MMLA", "para", 64, False)
        assert runner.runs_executed == mid == before + 1

    def test_figure2_structure_and_trend(self, runner):
        figure = runner.figure2(mechanisms=["rfm"], mixes=["MMLL"])
        assert figure.x_values == list(runner.config.nrh_sweep)
        series = figure.get("rfm")
        # Overhead grows (normalised WS falls) as N_RH decreases.
        assert series.values[-1] <= series.values[0] + 0.05

    def test_figure6_and_7_report_geomean(self, runner):
        fig6 = runner.figure6(nrh=64, mixes=["MMLA"], mechanisms=["rfm"])
        assert fig6.x_values[-1] == "geomean"
        assert fig6.get("rfm+BH").values[-1] > 0
        fig7 = runner.figure7(nrh=64, mixes=["MMLA"], mechanisms=["rfm"])
        assert len(fig7.get("rfm+BH").values) == 2

    def test_figure8_contains_baseline_and_bh_series(self, runner):
        figure = runner.figure8(mechanisms=["rfm"], mixes=["MMLA"])
        assert "rfm" in figure.series and "rfm+BH" in figure.series

    def test_figure10_normalised_to_largest_nrh(self, runner):
        figure = runner.figure10(mechanisms=["rfm"], mixes=["MMLA"])
        series = figure.get("rfm")
        assert series.values[0] == pytest.approx(1.0, abs=1e-6) or \
            series.values[0] == 0.0
        # Preventive actions grow as N_RH shrinks.
        assert series.values[-1] >= series.values[0]

    def test_figure11_latency_curves_monotone(self, runner):
        figure = runner.figure11(nrh=64, mechanisms=["rfm"], mixes=["MMLA"],
                                 points=(50, 90, 100))
        for series in figure.series.values():
            assert series.values == sorted(series.values)

    def test_figure12_energy_normalised(self, runner):
        figure = runner.figure12(mechanisms=["rfm"], mixes=["MMLA"])
        assert all(v > 0 for v in figure.get("rfm").values)

    def test_figure13_benign_ratio_near_one(self, runner):
        figure = runner.figure13(nrh=1024, mixes=["MMLL"], mechanisms=["rfm"])
        geomean = figure.get("rfm+BH").values[-1]
        assert 0.8 <= geomean <= 1.2

    def test_figure18_includes_blockhammer(self, runner):
        figure = runner.figure18(mechanisms=["rfm"], mixes=["MMLA"])
        assert "blockhammer" in figure.series
        assert "rfm+BH" in figure.series

    def test_headline_numbers_structure(self, runner):
        numbers = runner.headline_numbers(nrh=64)
        assert set(numbers) == {"mean_benign_speedup", "mean_energy_ratio",
                                "mean_preventive_action_ratio"}
        assert numbers["mean_benign_speedup"] > 0

"""Tests for the §4.4 DMA throttling support and the §4/§5.2 OS interface."""

import pytest

from repro.controller.controller import MemoryController
from repro.core.breakhammer import BreakHammer, BreakHammerConfig
from repro.core.software_interface import ScoreRegisterFile, SoftwareScoreTracker
from repro.cpu.dma import DmaConfig, DmaEngine, OutstandingRequestTable
from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import PreventiveAction, PreventiveActionKind


class TestOutstandingRequestTable:
    def test_issue_and_resolve(self):
        table = OutstandingRequestTable(capacity=4, num_requesters=2)
        assert table.issue(0)
        assert table.outstanding_for(0) == 1
        table.resolve(0)
        assert table.outstanding_for(0) == 0

    def test_capacity_bound(self):
        table = OutstandingRequestTable(capacity=2, num_requesters=2)
        assert table.issue(0) and table.issue(1)
        assert not table.issue(0)
        assert table.rejections == 1

    def test_quota_bound_mirrors_mshr_interface(self):
        table = OutstandingRequestTable(capacity=8, num_requesters=2)
        table.set_quota(0, 1)
        assert table.issue(0)
        assert not table.can_issue(0)
        assert table.can_issue(1)  # other requester unaffected
        table.reset_quota(0)
        assert table.can_issue(0)

    def test_quota_clamped_and_snapshot(self):
        table = OutstandingRequestTable(capacity=4)
        table.set_quota(0, 100)
        assert table.quota_for(0) == 4
        table.set_quota(0, -3)
        assert table.quota_for(0) == 0
        assert table.snapshot()["capacity"] == 4

    def test_resolve_without_issue_raises(self):
        table = OutstandingRequestTable(capacity=4)
        with pytest.raises(RuntimeError):
            table.resolve(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            OutstandingRequestTable(capacity=0)


class TestDmaEngine:
    def make_system(self, quota=None):
        cfg = DeviceConfig.tiny()
        controller = MemoryController(cfg)
        table = OutstandingRequestTable(capacity=16, num_requesters=1)
        if quota is not None:
            table.set_quota(0, quota)
        dma = DmaEngine(0, DmaConfig(length_bytes=64 * 1024,
                                     requests_per_cycle=2),
                        table, controller.enqueue)
        return controller, table, dma

    def run(self, controller, dma, cycles=3000):
        for cycle in range(1, cycles):
            controller.tick(cycle)
            dma.tick(cycle)
        return dma

    def test_dma_streams_requests_to_memory(self):
        controller, table, dma = self.make_system()
        self.run(controller, dma)
        assert dma.stats.issued > 50
        assert dma.stats.completed > 0
        assert controller.stats.reads_completed == dma.stats.completed

    def test_outstanding_never_exceeds_quota(self):
        controller, table, dma = self.make_system(quota=2)
        max_outstanding = 0
        for cycle in range(1, 2000):
            controller.tick(cycle)
            dma.tick(cycle)
            max_outstanding = max(max_outstanding, table.outstanding_for(0))
        assert max_outstanding <= 2

    def test_throttled_dma_makes_less_progress(self):
        controller_full, _, dma_full = self.make_system()
        controller_cut, _, dma_cut = self.make_system(quota=1)
        self.run(controller_full, dma_full)
        self.run(controller_cut, dma_cut)
        assert dma_cut.stats.issued < dma_full.stats.issued

    def test_write_dma(self):
        cfg = DeviceConfig.tiny()
        controller = MemoryController(cfg)
        table = OutstandingRequestTable(capacity=8, num_requesters=1)
        dma = DmaEngine(0, DmaConfig(is_write=True, length_bytes=32 * 1024),
                        table, controller.enqueue)
        for cycle in range(1, 2000):
            controller.tick(cycle)
            dma.tick(cycle)
        assert controller.stats.writes_completed > 0

    def test_breakhammer_can_drive_dma_quota(self):
        """The §4.4 integration: BreakHammer's apply_quota targets the table."""

        table = OutstandingRequestTable(capacity=16, num_requesters=2)
        bh = BreakHammer(num_threads=2,
                         config=BreakHammerConfig(window_ms=0.001,
                                                  threat_threshold=2.0),
                         full_quota=16,
                         apply_quota=table.set_quota,
                         cycle_time_ns=1.0)
        coord = DramAddress(0, 0, 0, 0, 5, 0)
        for _ in range(10):
            for _ in range(20):
                bh.on_activation(coord, 1, 0)
            bh.on_activation(coord, 0, 0)
            bh.on_preventive_action(
                PreventiveAction(PreventiveActionKind.VICTIM_REFRESH, [],
                                 "test"), 0)
        assert bh.is_throttled(1)
        assert table.quota_for(1) < 16
        assert table.quota_for(0) == 16

    def test_dma_config_validation(self):
        with pytest.raises(ValueError):
            DmaConfig(length_bytes=0)
        with pytest.raises(ValueError):
            DmaConfig(requests_per_cycle=0)


def make_breakhammer(num_threads=4):
    return BreakHammer(num_threads=num_threads,
                       config=BreakHammerConfig(window_ms=0.001,
                                                threat_threshold=4.0),
                       full_quota=64, cycle_time_ns=1.0)


def attribute(bh, thread, actions=1, activations=10):
    coord = DramAddress(0, 0, 0, 0, 9, 0)
    for _ in range(actions):
        for _ in range(activations):
            bh.on_activation(coord, thread, 0)
        bh.on_preventive_action(
            PreventiveAction(PreventiveActionKind.VICTIM_REFRESH, [], "t"), 0)


class TestScoreRegisterFile:
    def test_read_matches_breakhammer_scores(self):
        bh = make_breakhammer()
        attribute(bh, 2, actions=3)
        registers = ScoreRegisterFile(bh)
        assert registers.read(2) == pytest.approx(3.0)
        assert registers.read(0) == 0.0
        assert registers.read_all() == bh.export_scores()
        assert registers.num_threads == 4


class TestSoftwareScoreTracker:
    def test_owner_accumulation_across_epochs(self):
        bh = make_breakhammer()
        tracker = SoftwareScoreTracker(ScoreRegisterFile(bh),
                                       threat_threshold=2.0)
        schedule = {0: "proc_a", 1: "proc_b", 2: "proc_b", 3: "proc_c"}
        attribute(bh, 0, actions=2)
        tracker.sample_epoch(schedule)
        attribute(bh, 0, actions=2)
        tracker.sample_epoch(schedule)
        assert tracker.score_of("proc_a") == pytest.approx(4.0)
        assert tracker.score_of("proc_b") == 0.0

    def test_circumvention_attack_detected_at_owner_level(self):
        """§5.2: the attacker rotates across hardware threads every epoch,
        so no single hardware thread stands out, but the owning process's
        cumulative score does."""

        bh = make_breakhammer()
        tracker = SoftwareScoreTracker(ScoreRegisterFile(bh),
                                       threat_threshold=4.0)
        benign_owners = {0: "victim_a", 1: "victim_b", 2: "victim_c"}
        flagged_history = []
        for epoch in range(6):
            attack_thread = 3 if epoch % 2 == 0 else 2
            schedule = dict(benign_owners)
            schedule[attack_thread] = "attacker_proc"
            if attack_thread == 2:
                schedule[3] = "victim_c"
            # The attacking thread causes this epoch's preventive actions.
            attribute(bh, attack_thread, actions=3)
            flagged_history.append(tracker.sample_epoch(schedule))
            # Hardware rotates its window between epochs.
            bh.scores.rotate()
        assert any("attacker_proc" in flagged for flagged in flagged_history)
        final = tracker.flagged_owners()
        assert final == ["attacker_proc"]
        report = tracker.report()
        assert report[0]["owner"] == "attacker_proc"
        assert len(report[0]["hw_threads_seen"]) == 2

    def test_benign_owners_not_flagged(self):
        bh = make_breakhammer()
        tracker = SoftwareScoreTracker(ScoreRegisterFile(bh),
                                       threat_threshold=4.0)
        schedule = {t: f"proc_{t}" for t in range(4)}
        for _ in range(4):
            for thread in range(4):
                attribute(bh, thread, actions=1)
            assert tracker.sample_epoch(schedule) == []

    def test_register_reset_between_samples_handled(self):
        bh = make_breakhammer()
        tracker = SoftwareScoreTracker(ScoreRegisterFile(bh),
                                       threat_threshold=1.0)
        schedule = {0: "p", 1: "q", 2: "q", 3: "q"}
        attribute(bh, 0, actions=2)
        tracker.sample_epoch(schedule)
        bh.scores.rotate()
        bh.scores.rotate()  # registers drop back to zero
        attribute(bh, 0, actions=1)
        tracker.sample_epoch(schedule)
        # 2 from the first epoch + 1 after the reset, never negative.
        assert tracker.score_of("p") == pytest.approx(3.0)

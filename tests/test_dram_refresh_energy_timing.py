"""Tests for refresh scheduling, the energy model, and the timing checker."""

import pytest

from repro.dram.commands import CommandType
from repro.dram.config import DeviceConfig
from repro.dram.energy import EnergyModel, EnergyParameters
from repro.dram.refresh import RefreshManager
from repro.dram.timing import TimingChecker, build_rules


class TestRefreshManager:
    def test_refresh_becomes_pending_after_trefi(self):
        cfg = DeviceConfig.tiny()
        manager = RefreshManager(cfg)
        t = cfg.timing_cycles()
        manager.tick(t.trefi - 1)
        assert manager.pending_refresh(t.trefi - 1) is None
        manager.tick(t.trefi)
        cmd = manager.pending_refresh(t.trefi)
        assert cmd is not None and cmd.kind is CommandType.REF

    def test_refresh_issued_advances_deadline(self):
        cfg = DeviceConfig.tiny()
        manager = RefreshManager(cfg)
        t = cfg.timing_cycles()
        manager.tick(t.trefi)
        manager.refresh_issued(0, t.trefi)
        assert manager.pending_refresh(t.trefi) is None
        assert manager.states[0].next_refresh_cycle == 2 * t.trefi

    def test_urgency_grows_with_postponement(self):
        cfg = DeviceConfig.tiny()
        manager = RefreshManager(cfg)
        t = cfg.timing_cycles()
        manager.tick(t.trefi)
        assert manager.urgency(0, t.trefi) == pytest.approx(0.0)
        assert manager.urgency(0, 2 * t.trefi) == pytest.approx(1.0)
        assert not manager.must_refresh_now(0, 2 * t.trefi)
        assert manager.must_refresh_now(0, 6 * t.trefi)

    def test_expected_refreshes(self):
        cfg = DeviceConfig.tiny()
        manager = RefreshManager(cfg)
        t = cfg.timing_cycles()
        assert manager.expected_refreshes(10 * t.trefi) == 10

    def test_multi_rank_tracking(self):
        cfg = DeviceConfig.tiny(ranks=2)
        manager = RefreshManager(cfg)
        t = cfg.timing_cycles()
        manager.tick(t.trefi)
        manager.refresh_issued(0, t.trefi)
        cmd = manager.pending_refresh(t.trefi)
        assert cmd is not None and cmd.rank == 1
        assert manager.total_refreshes() == 1


class TestEnergyModel:
    def test_more_commands_more_energy(self):
        cfg = DeviceConfig.tiny()
        low = EnergyModel(cfg)
        high = EnergyModel(cfg)
        low.record(CommandType.ACT, 10)
        high.record(CommandType.ACT, 1000)
        assert high.report(1000).activation_mj > low.report(1000).activation_mj

    def test_background_energy_scales_with_time(self):
        cfg = DeviceConfig.tiny()
        model = EnergyModel(cfg)
        assert model.report(2000).background_mj == pytest.approx(
            2 * model.report(1000).background_mj
        )

    def test_maintenance_energy_separated(self):
        cfg = DeviceConfig.tiny()
        model = EnergyModel(cfg)
        model.record(CommandType.VRR, 100)
        model.record(CommandType.RFM, 10)
        model.record(CommandType.MIG, 5)
        report = model.report(100)
        assert report.maintenance_mj > 0
        assert report.maintenance_mj == pytest.approx(
            report.preventive_mj + report.rfm_mj + report.migration_mj
        )

    def test_total_includes_all_components(self):
        cfg = DeviceConfig.tiny()
        model = EnergyModel(cfg)
        model.record_counts({CommandType.ACT: 5, CommandType.RD: 5,
                             CommandType.WR: 2, CommandType.REF: 1})
        report = model.report(500)
        total = (report.activation_mj + report.read_mj + report.write_mj
                 + report.refresh_mj + report.background_mj)
        assert report.total_mj == pytest.approx(total)

    def test_reset_clears_counts(self):
        cfg = DeviceConfig.tiny()
        model = EnergyModel(cfg)
        model.record(CommandType.ACT, 100)
        model.reset()
        assert model.report(100).activation_mj == 0

    def test_custom_parameters(self):
        cfg = DeviceConfig.tiny()
        model = EnergyModel(cfg, EnergyParameters(act_pre_nj=100.0))
        model.record(CommandType.ACT, 1)
        assert model.report(1).activation_mj == pytest.approx(100.0 * 1e-6)

    def test_as_dict_round_trip(self):
        cfg = DeviceConfig.tiny()
        model = EnergyModel(cfg)
        data = model.report(10).as_dict()
        assert "total_mj" in data and "maintenance_mj" in data


class TestTimingChecker:
    def test_rule_construction(self):
        rules = build_rules(DeviceConfig.tiny().timing_cycles())
        pairs = {(r.previous, r.following, r.scope) for r in rules}
        assert (CommandType.ACT, CommandType.RD, "bank") in pairs
        assert (CommandType.ACT, CommandType.ACT, "rank") in pairs

    def test_detects_trcd_violation(self):
        checker = TimingChecker(DeviceConfig.tiny())
        checker.record(CommandType.ACT, 0)
        checker.record(CommandType.RD, 1)
        assert not checker.ok
        assert any("ACT -> RD" in v for v in checker.violations)

    def test_accepts_legal_sequence(self):
        cfg = DeviceConfig.tiny()
        t = cfg.timing_cycles()
        checker = TimingChecker(cfg)
        checker.record(CommandType.ACT, 0)
        checker.record(CommandType.RD, t.trcd)
        checker.record(CommandType.PRE, t.tras)
        checker.record(CommandType.ACT, t.tras + t.trp + t.trc)
        assert checker.ok, checker.violations

    def test_scope_filtering(self):
        cfg = DeviceConfig.tiny()
        checker = TimingChecker(cfg)
        checker.record(CommandType.ACT, 0, rank=0, bank_group=0, bank=0)
        # Different rank: no tRRD constraint applies.
        checker.record(CommandType.ACT, 1, rank=1, bank_group=0, bank=0)
        assert checker.ok

    def test_four_activate_window_analysis(self):
        cfg = DeviceConfig.tiny()
        t = cfg.timing_cycles()
        checker = TimingChecker(cfg)
        for i in range(6):
            checker.record(CommandType.ACT, i * (t.tfaw // 2), rank=0,
                           bank_group=i % 2, bank=i % 2)
        worst = checker.four_activate_windows()
        assert worst[0] <= 4 or worst[0] >= 2  # analysis returns a count
        assert isinstance(worst[0], int)

    def test_device_model_respects_declarative_rules(self):
        """Cross-check: drive the Rank model through repeated open/close
        cycles across all banks and validate every command with the
        independent declarative checker."""

        from repro.dram.commands import Command
        from repro.dram.device import Rank

        cfg = DeviceConfig.tiny()
        rank = Rank(cfg)
        checker = TimingChecker(cfg)
        activations = 0
        cycle = 0
        banks = [(bg, ba) for bg in range(cfg.bank_groups)
                 for ba in range(cfg.banks_per_group)]
        while activations < 12 and cycle < 50_000:
            for bg, ba in banks:
                bank = rank.bank(bg, ba)
                if bank.is_open():
                    pre = Command(CommandType.PRE, bank_group=bg, bank=ba)
                    if rank.ready(pre, cycle):
                        rank.issue(pre, cycle)
                        checker.record(CommandType.PRE, cycle, 0, bg, ba)
                else:
                    acti = Command(CommandType.ACT, bank_group=bg, bank=ba,
                                   row=activations % cfg.rows_per_bank)
                    if rank.ready(acti, cycle):
                        rank.issue(acti, cycle)
                        checker.record(CommandType.ACT, cycle, 0, bg, ba)
                        activations += 1
            cycle += 1
        assert activations == 12
        assert checker.ok, checker.violations
        assert max(checker.four_activate_windows().values()) <= 4

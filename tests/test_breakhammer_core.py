"""Tests for the BreakHammer orchestration (observe → identify → throttle)."""

import pytest

from repro.core.breakhammer import BreakHammer, BreakHammerConfig
from repro.dram.address import DramAddress
from repro.dram.config import DeviceConfig
from repro.mitigations.base import PreventiveAction, PreventiveActionKind


def coord(row=5):
    return DramAddress(0, 0, 0, 0, row, 0)


def action(weight=1.0):
    return PreventiveAction(
        kind=PreventiveActionKind.VICTIM_REFRESH,
        commands=[],
        mechanism="test",
        weight=weight,
    )


def make_bh(**overrides):
    defaults = dict(window_ms=0.001, threat_threshold=4.0,
                    outlier_threshold=0.65)
    defaults.update(overrides)
    config = BreakHammerConfig(**defaults)
    quota_calls = []
    bh = BreakHammer(
        num_threads=4,
        config=config,
        device_config=DeviceConfig.tiny(),
        full_quota=64,
        apply_quota=lambda t, q: quota_calls.append((t, q)),
    )
    return bh, quota_calls


class TestScoreAttribution:
    def test_score_proportional_to_activation_share(self):
        bh, _ = make_bh()
        for _ in range(30):
            bh.on_activation(coord(), 0, 0)
        for _ in range(10):
            bh.on_activation(coord(), 1, 0)
        bh.on_preventive_action(action(), 0)
        assert bh.score_of(0) == pytest.approx(0.75)
        assert bh.score_of(1) == pytest.approx(0.25)
        assert bh.score_of(2) == 0.0

    def test_activation_tracking_resets_after_action(self):
        bh, _ = make_bh()
        for _ in range(10):
            bh.on_activation(coord(), 0, 0)
        bh.on_preventive_action(action(), 0)
        # Second action with no new activations attributes nothing new.
        bh.on_preventive_action(action(), 1)
        assert bh.score_of(0) == pytest.approx(1.0)

    def test_weight_scales_attribution(self):
        bh, _ = make_bh()
        bh.on_activation(coord(), 2, 0)
        bh.on_preventive_action(action(weight=0.25), 0)
        assert bh.score_of(2) == pytest.approx(0.25)

    def test_unknown_thread_ignored(self):
        bh, _ = make_bh()
        bh.on_activation(coord(), None, 0)
        bh.on_activation(coord(), 99, 0)
        bh.on_preventive_action(action(), 0)
        assert all(bh.score_of(t) == 0.0 for t in range(4))

    def test_total_attributed_score_equals_action_weights(self):
        bh, _ = make_bh()
        for i in range(8):
            bh.on_activation(coord(), i % 4, 0)
            bh.on_preventive_action(action(), 0)
        assert bh.stats.score_attributed == pytest.approx(8.0)


class TestSuspectIdentificationAndThrottling:
    def hammer(self, bh, attacker=3, actions=12, attacker_share=0.8):
        """Generate activations dominated by one thread plus actions."""

        for _ in range(actions):
            for _ in range(int(10 * attacker_share)):
                bh.on_activation(coord(), attacker, 0)
            for t in range(4):
                if t != attacker:
                    bh.on_activation(coord(), t, 0)
            bh.on_preventive_action(action(), 0)

    def test_dominant_thread_marked_and_throttled(self):
        bh, quota_calls = make_bh()
        self.hammer(bh, attacker=3)
        assert 3 in bh.suspects()
        assert bh.is_throttled(3)
        assert bh.quota_of(3) == 6
        assert (3, 6) in quota_calls
        assert bh.stats.suspects_by_thread.get(3, 0) >= 1

    def test_benign_threads_not_throttled(self):
        bh, _ = make_bh()
        self.hammer(bh, attacker=3)
        for t in (0, 1, 2):
            assert not bh.is_throttled(t)
            assert bh.quota_of(t) == 64

    def test_uniform_load_never_throttles(self):
        bh, _ = make_bh()
        for _ in range(50):
            for t in range(4):
                bh.on_activation(coord(), t, 0)
            bh.on_preventive_action(action(), 0)
        assert bh.suspects() == []
        assert all(not bh.is_throttled(t) for t in range(4))

    def test_threat_threshold_prevents_early_throttling(self):
        bh, _ = make_bh(threat_threshold=1000.0)
        self.hammer(bh, attacker=3)
        assert not bh.is_throttled(3)

    def test_window_rotation_restores_clean_thread(self):
        bh, _ = make_bh()
        self.hammer(bh, attacker=3)
        assert bh.is_throttled(3)
        window = bh.window_cycles
        # Two clean windows: one to clear recent_suspect, one to restore.
        bh.tick(window + 1)
        bh.tick(2 * window + 2)
        bh.tick(3 * window + 3)
        assert bh.quota_of(3) == 64

    def test_repeat_offender_quota_shrinks_further(self):
        bh, _ = make_bh()
        self.hammer(bh, attacker=3)
        first_quota = bh.quota_of(3)
        bh.tick(bh.window_cycles + 1)   # next window; still recent suspect
        self.hammer(bh, attacker=3)
        assert bh.quota_of(3) == first_quota - 1  # P_oldsuspect = 1


class TestConfigurationAndExport:
    def test_paper_defaults(self):
        config = BreakHammerConfig()
        assert config.window_ms == 64.0
        assert config.threat_threshold == 32.0
        assert config.outlier_threshold == 0.65
        assert config.p_oldsuspect == 1
        assert config.p_newsuspect == 10

    def test_window_cycles_derived_from_tck(self):
        bh = BreakHammer(num_threads=2, config=BreakHammerConfig(window_ms=1.0),
                         cycle_time_ns=1.0)
        assert bh.window_cycles == 1_000_000

    def test_export_scores_for_system_software(self):
        bh, _ = make_bh()
        bh.on_activation(coord(), 1, 0)
        bh.on_preventive_action(action(), 0)
        exported = bh.export_scores()
        assert set(exported) == {0, 1, 2, 3}
        assert exported[1] == pytest.approx(1.0)

    def test_snapshot_contains_all_sections(self):
        bh, _ = make_bh()
        snap = bh.snapshot()
        assert {"config", "window_cycles", "stats", "scores", "throttler"} <= set(snap)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            BreakHammer(num_threads=0)

    def test_windows_elapsed_counted(self):
        bh, _ = make_bh()
        for i in range(1, 4):
            bh.tick(i * bh.window_cycles + i)
        assert bh.stats.windows_elapsed == 3

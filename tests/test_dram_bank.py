"""Tests for the per-bank DRAM state machine."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig


@pytest.fixture()
def bank():
    cfg = DeviceConfig.tiny()
    return Bank(cfg.timing_cycles(), cfg.rows_per_bank)


def act(row=5, thread=None):
    return Command(CommandType.ACT, row=row, source_thread=thread)


def rd(row=5, col=0):
    return Command(CommandType.RD, row=row, column=col)


def pre():
    return Command(CommandType.PRE)


class TestActivatePrechargeCycle:
    def test_initially_closed(self, bank):
        assert bank.state is BankState.CLOSED
        assert bank.open_row is None

    def test_activate_opens_row(self, bank):
        assert bank.ready(CommandType.ACT, 0)
        bank.issue(act(7), 0)
        assert bank.state is BankState.OPEN
        assert bank.open_row == 7
        assert bank.stats.activations == 1

    def test_cannot_activate_open_bank(self, bank):
        bank.issue(act(7), 0)
        assert not bank.ready(CommandType.ACT, 100)

    def test_read_requires_trcd(self, bank):
        bank.issue(act(), 0)
        t = bank.timing
        assert not bank.ready(CommandType.RD, t.trcd - 1)
        assert bank.ready(CommandType.RD, t.trcd)

    def test_precharge_requires_tras(self, bank):
        bank.issue(act(), 0)
        t = bank.timing
        assert not bank.ready(CommandType.PRE, t.tras - 1)
        assert bank.ready(CommandType.PRE, t.tras)

    def test_act_to_act_requires_trc(self, bank):
        t = bank.timing
        bank.issue(act(1), 0)
        bank.issue(pre(), t.tras)
        earliest = max(t.trc, t.tras + t.trp)
        assert not bank.ready(CommandType.ACT, earliest - 1)
        assert bank.ready(CommandType.ACT, earliest)

    def test_precharge_closes_row(self, bank):
        bank.issue(act(3), 0)
        bank.issue(pre(), bank.timing.tras)
        assert bank.state is BankState.CLOSED
        assert bank.open_row is None
        assert bank.stats.precharges == 1

    def test_timing_violation_raises(self, bank):
        bank.issue(act(), 0)
        with pytest.raises(RuntimeError):
            bank.issue(rd(), 0)  # tRCD not satisfied

    def test_act_requires_row(self, bank):
        with pytest.raises(ValueError):
            bank.issue(Command(CommandType.ACT), 0)


class TestColumnCommands:
    def test_read_counts_row_hit(self, bank):
        bank.issue(act(), 0)
        bank.issue(rd(), bank.timing.trcd)
        assert bank.stats.reads == 1
        assert bank.stats.row_hits == 1

    def test_write_delays_precharge_by_twr(self, bank):
        t = bank.timing
        bank.issue(act(), 0)
        bank.issue(Command(CommandType.WR, row=5, column=1), t.trcd)
        assert not bank.ready(CommandType.PRE, t.trcd + t.twr - 1)
        assert bank.ready(CommandType.PRE, t.trcd + t.twr)

    def test_consecutive_reads_respect_tccd(self, bank):
        t = bank.timing
        bank.issue(act(), 0)
        bank.issue(rd(col=0), t.trcd)
        assert not bank.ready(CommandType.RD, t.trcd + 1)
        assert bank.ready(CommandType.RD, t.trcd + t.tccd_l)


class TestMaintenanceCommands:
    def test_refresh_blocks_bank_for_trfc(self, bank):
        t = bank.timing
        done = bank.issue(Command(CommandType.REF), 0)
        assert done == t.trfc
        assert not bank.ready(CommandType.ACT, t.trfc - 1)
        assert bank.ready(CommandType.ACT, t.trfc)
        assert bank.stats.refreshes == 1

    def test_victim_refresh_blocks_for_tvrr(self, bank):
        t = bank.timing
        done = bank.issue(Command(CommandType.VRR, row=6), 0)
        assert done == t.tvrr
        assert bank.stats.preventive_refreshes == 1

    def test_rfm_blocks_for_trfm(self, bank):
        done = bank.issue(Command(CommandType.RFM), 0)
        assert done == bank.timing.trfm
        assert bank.stats.rfm_commands == 1

    def test_migration_is_more_expensive_than_refresh(self, bank):
        done = bank.issue(Command(CommandType.MIG, row=3), 0)
        assert done > bank.timing.tvrr
        assert bank.stats.migrations == 1

    def test_maintenance_requires_closed_bank(self, bank):
        bank.issue(act(), 0)
        assert not bank.ready(CommandType.VRR, 1)
        assert not bank.ready(CommandType.REF, 1)


class TestRowActivationTracking:
    def test_per_row_activation_counts(self, bank):
        t = bank.timing
        cycle = 0
        for i in range(3):
            bank.issue(act(9), cycle)
            cycle += t.tras
            bank.issue(pre(), cycle)
            cycle += max(t.trp, t.trc - t.tras)
        assert bank.row_activation_counts[9] == 3

    def test_reset_row_activation_counts(self, bank):
        bank.issue(act(2), 0)
        bank.reset_row_activation_counts()
        assert bank.row_activation_counts == {}

    def test_conflict_recording(self, bank):
        bank.record_conflict()
        assert bank.stats.row_conflicts == 1

    def test_is_open_with_row_argument(self, bank):
        bank.issue(act(4), 0)
        assert bank.is_open()
        assert bank.is_open(4)
        assert not bank.is_open(5)

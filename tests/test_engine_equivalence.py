"""Cycle-engine vs fast-forward (and batch) engine equivalence.

The fast engine (``SimulationConfig(engine="fast")``) must be an *exact*
accelerator: it may skip cycles it can prove inert, but every
:class:`repro.sim.stats.RunStatistics` field — per-thread IPCs, latency
lists, activation counts, energy, BreakHammer counters — must come out
bit-for-bit identical to the reference cycle engine.  The batch engine
(``engine="batch"`` — a lockstep batch of one here; sweeps form larger
batches) carries the same contract, including its vectorised scheduler
scan.  These tests pin both on a benign mix, on a hammering-attacker mix,
and under an instruction-limit stop condition, and also check the fast
engine actually fast-forwards where there is slack.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.simulator import Simulator
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import make_mix

SIM_CYCLES = 6_000


def _mix(name: str, config: SystemConfig):
    return make_mix(
        name,
        device=config.device,
        mapping=config.mapping,
        entries_per_core=2_000,
        attacker_entries=3_000,
        seed=0,
        attacker_config=AttackerConfig(entries=3_000, seed=0),
    )


def _run(engine: str, mix_name: str, mechanism: str, breakhammer: bool,
         instruction_limit=None, warmup_cycles=0, nrh=64):
    config = SystemConfig.fast_profile(
        mitigation=mechanism,
        nrh=nrh,
        breakhammer_enabled=breakhammer,
        sim_cycles=SIM_CYCLES,
    )
    mix = _mix(mix_name, config)
    simulator = Simulator(
        config,
        mix.traces,
        SimulationConfig(max_cycles=SIM_CYCLES, engine=engine,
                         instruction_limit=instruction_limit,
                         warmup_cycles=warmup_cycles),
        attacker_threads=mix.attacker_threads,
    )
    result = simulator.run()
    return result, simulator


def _assert_identical(mix_name: str, mechanism: str, breakhammer: bool,
                      instruction_limit=None, warmup_cycles=0, nrh=64,
                      engines=("fast", "batch")):
    cycle_result, _ = _run("cycle", mix_name, mechanism, breakhammer,
                           instruction_limit, warmup_cycles, nrh)
    cycle_cores = [core.snapshot() for core in cycle_result.system.cores]
    fast_result = fast_sim = None
    for engine in engines:
        result, sim = _run(engine, mix_name, mechanism, breakhammer,
                           instruction_limit, warmup_cycles, nrh)
        if fast_result is None:
            fast_result, fast_sim = result, sim
        assert dataclasses.asdict(cycle_result.stats) == \
            dataclasses.asdict(result.stats), engine
        assert cycle_result.finished_by_instruction_limit == \
            result.finished_by_instruction_limit, engine
        # Per-core introspection (including stall-cycle counters, which
        # the accelerated engines replay for skipped cycles) must match.
        cores = [core.snapshot() for core in result.system.cores]
        assert cycle_cores == cores, engine
    return cycle_result, fast_result, fast_sim


class TestEngineEquivalence:
    def test_benign_mix(self):
        _assert_identical("MMLL", "graphene", False)

    def test_hammering_attacker_mix(self):
        _assert_identical("HHMA", "graphene", True)

    def test_attacker_mix_with_rfm(self):
        _assert_identical("MMLA", "rfm", True)

    def test_rega_adjusted_timings(self):
        """REGA inflates tRAS/tRC instead of issuing blocking commands; the
        fast engine must honour the *adjusted* timings when computing its
        jump targets, and REGA's zero-command preventive actions must be
        scored identically by BreakHammer under both engines."""

        cycle_result, fast_result, _ = _assert_identical(
            "HHMA", "rega", True
        )
        mechanism_stats = cycle_result.stats.mitigation_stats
        assert mechanism_stats["timing_penalty_ns"] > 0
        assert cycle_result.stats.preventive_actions > 0
        # The adjusted device really is what both systems simulated.
        base = SystemConfig.fast_profile(mitigation="rega", nrh=64,
                                         sim_cycles=SIM_CYCLES)
        for result in (cycle_result, fast_result):
            assert result.system.device.timings.trc > base.device.timings.trc

    def test_multi_rank_refresh(self):
        """Both ranks' periodic refreshes must land on identical cycles.

        The fast engine treats every rank's next refresh deadline as an
        event; with the paper's two-rank device several tREFI windows
        elapse per run, so this pins per-rank refresh bookkeeping (issued
        and postponed counts), not just the aggregate REF count.
        """

        cycle_result, fast_result, _ = _assert_identical(
            "MMLA", "graphene", False
        )
        managers = [
            result.system.controller.refresh_manager
            for result in (cycle_result, fast_result)
        ]
        assert managers[0].config.ranks >= 2
        for state_cycle, state_fast in zip(managers[0].states,
                                           managers[1].states):
            assert state_cycle.issued_count == state_fast.issued_count
            assert state_cycle.postponed == state_fast.postponed
            assert state_cycle.next_refresh_cycle == \
                state_fast.next_refresh_cycle
            # Every rank actually refreshed during the run.
            assert state_cycle.issued_count > 0
        assert cycle_result.stats.refreshes >= 2 * managers[0].config.ranks

    def test_warmup_boundary_is_simulated_exactly(self):
        """The fast engine must land on (not jump over) the warmup cycle."""

        _assert_identical("HHMA", "para", True,
                          warmup_cycles=SIM_CYCLES // 3)

    def test_instruction_limit_stop(self):
        cycle_result, fast_result, _ = _assert_identical(
            "MMLL", "none", False, instruction_limit=2_000
        )
        assert cycle_result.finished_by_instruction_limit
        assert cycle_result.stats.cycles == fast_result.stats.cycles

    def test_prac_backoff_storm(self):
        """Saturated attackers driving repeated alert_n back-offs.

        A four-attacker mix at a tiny threshold forces PRAC's back-off
        servicing over and over; every back-off blocks the bank with RFM
        commands, perturbing the controller's timing state the fast engine
        must reproduce exactly.  This was one of the two contract gaps
        ROADMAP listed as unproven.
        """

        cycle_result, _, _ = _assert_identical("AAAA", "prac", False, nrh=32)
        stats = cycle_result.stats.mitigation_stats
        # The storm really happened: dozens of back-offs, not a couple.
        assert stats["backoffs"] > 30
        assert cycle_result.stats.preventive_actions > 30

    def test_prac_backoff_storm_with_breakhammer(self):
        """The same storm with BreakHammer scoring every back-off."""

        cycle_result, _, _ = _assert_identical("HHAA", "prac", True, nrh=32)
        assert cycle_result.stats.mitigation_stats["backoffs"] > 10
        assert cycle_result.stats.breakhammer_stats is not None

    def test_instruction_limit_after_warmup(self):
        """Limit crossed *after* the warmup boundary: both observation
        points land on simulated ticks and the warmup baseline is
        subtracted identically — the other contract gap ROADMAP named."""

        cycle_result, fast_result, _ = _assert_identical(
            "MMLL", "none", False, instruction_limit=8_000,
            warmup_cycles=1_500,
        )
        assert cycle_result.finished_by_instruction_limit
        # The run crossed the warmup boundary before stopping, so the
        # measured interval is the post-warmup remainder on both engines.
        assert cycle_result.stats.cycles > 1_500
        assert cycle_result.stats.cycles == fast_result.stats.cycles

    def test_instruction_limit_before_warmup(self):
        """Limit crossed *before* the warmup boundary: the snapshot never
        happens and both engines must report the full (short) run."""

        cycle_result, fast_result, _ = _assert_identical(
            "MMLL", "none", False, instruction_limit=400,
            warmup_cycles=5_500,
        )
        assert cycle_result.finished_by_instruction_limit
        assert cycle_result.stats.cycles < 5_500
        assert cycle_result.stats.cycles == fast_result.stats.cycles

    def test_fast_engine_skips_idle_cycles(self):
        """A single low-intensity core leaves slack the engine must use."""

        config = SystemConfig.fast_profile(sim_cycles=SIM_CYCLES).with_(
            num_cores=1
        )
        mix = _mix("MMLL", config)
        low_intensity_trace = mix.traces[-1]  # an L workload
        results = {}
        for engine in ("cycle", "fast"):
            simulator = Simulator(
                config, [low_intensity_trace],
                SimulationConfig(max_cycles=SIM_CYCLES, engine=engine),
            )
            results[engine] = (simulator.run(), simulator)
        cycle_stats = results["cycle"][0].stats
        fast_stats = results["fast"][0].stats
        assert dataclasses.asdict(cycle_stats) == dataclasses.asdict(fast_stats)
        # The cycle engine ticks every cycle; the fast engine must have
        # jumped over a substantial fraction of them.
        assert results["cycle"][1].ticks_executed == cycle_stats.cycles
        assert results["fast"][1].ticks_executed < 0.8 * cycle_stats.cycles

    def test_smoke_both_engines_end_to_end(self):
        """Tier-1 smoke: one tiny run per engine, statistics identical."""

        config = SystemConfig.fast_profile(
            mitigation="para", nrh=1024, sim_cycles=1_500
        )
        mix = _mix("MMLA", config)
        stats = {}
        for engine in ("cycle", "fast", "batch"):
            simulator = Simulator(
                config, mix.traces,
                SimulationConfig(max_cycles=1_500, engine=engine),
                attacker_threads=mix.attacker_threads,
            )
            stats[engine] = simulator.run().stats
        assert dataclasses.asdict(stats["cycle"]) == \
            dataclasses.asdict(stats["fast"])
        assert dataclasses.asdict(stats["cycle"]) == \
            dataclasses.asdict(stats["batch"])
        assert stats["cycle"].cycles == 1_500


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(engine="warp")

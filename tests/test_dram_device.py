"""Tests for rank/channel composition and rank-level timing."""

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.config import DeviceConfig
from repro.dram.device import Channel, Rank


@pytest.fixture()
def rank():
    return Rank(DeviceConfig.tiny())


@pytest.fixture()
def channel():
    return Channel(DeviceConfig.tiny())


def act(bg=0, ba=0, row=1, rank_=0):
    return Command(CommandType.ACT, rank=rank_, bank_group=bg, bank=ba, row=row)


class TestRankTiming:
    def test_trrd_between_banks_same_group(self, rank):
        t = rank.timing
        rank.issue(act(bg=0, ba=0), 0)
        nxt = act(bg=0, ba=1)
        assert not rank.ready(nxt, t.trrd_l - 1)
        assert rank.ready(nxt, t.trrd_l)

    def test_trrd_short_across_bank_groups(self, rank):
        t = rank.timing
        rank.issue(act(bg=0, ba=0), 0)
        nxt = act(bg=1, ba=0)
        assert not rank.ready(nxt, t.trrd_s - 1)
        assert rank.ready(nxt, t.trrd_s)

    def test_four_activate_window(self):
        cfg = DeviceConfig.tiny(bank_groups=4, banks_per_group=2)
        rank = Rank(cfg)
        t = rank.timing
        cycle = 0
        issue_cycles = []
        # Four ACTs to four different banks, as fast as tRRD allows.
        for bg in range(4):
            command = act(bg=bg, ba=0)
            while not rank.ready(command, cycle):
                cycle += 1
            rank.issue(command, cycle)
            issue_cycles.append(cycle)
        fifth = act(bg=0, ba=1, row=50)  # a fifth, still-closed bank
        window_opens = issue_cycles[0] + t.tfaw
        if window_opens > issue_cycles[-1] + t.trrd_l:
            # The fifth ACT is limited by tFAW, not tRRD.
            assert not rank.ready(fifth, window_opens - 1)
        assert rank.ready(fifth, max(window_opens,
                                     issue_cycles[-1] + t.trrd_l))

    def test_refresh_blocks_whole_rank(self, rank):
        t = rank.timing
        ref = Command(CommandType.REF)
        assert rank.ready(ref, 0)
        done = rank.issue(ref, 0)
        assert done == t.trfc
        assert not rank.ready(act(), t.trfc - 1)
        assert rank.ready(act(), t.trfc)
        assert rank.total_refreshes == 1

    def test_refresh_requires_all_banks_closed(self, rank):
        rank.issue(act(bg=0, ba=0), 0)
        assert not rank.ready(Command(CommandType.REF), 5)

    def test_activation_counter(self, rank):
        rank.issue(act(bg=0, ba=0), 0)
        cycle = rank.timing.trrd_s
        rank.issue(act(bg=1, ba=0), cycle)
        assert rank.total_activations == 2

    def test_stats_aggregate_banks(self, rank):
        rank.issue(act(bg=0, ba=0), 0)
        stats = rank.stats()
        assert stats["activations"] == 1
        assert "rank_refreshes" in stats


class TestChannel:
    def test_data_bus_serialises_column_commands(self, channel):
        t = channel.timing
        channel.issue(act(bg=0, ba=0, row=1), 0)
        channel.issue(act(bg=1, ba=0, row=1), t.trrd_s)
        rd0 = Command(CommandType.RD, bank_group=0, bank=0, row=1, column=0)
        rd1 = Command(CommandType.RD, bank_group=1, bank=0, row=1, column=0)
        start = max(t.trcd, t.trrd_s + t.trcd)
        channel.issue(rd0, start)
        assert not channel.ready(rd1, start + 1)
        assert channel.ready(rd1, start + t.tbl)

    def test_commands_issued_histogram(self, channel):
        channel.issue(act(), 0)
        assert channel.commands_issued[CommandType.ACT] == 1

    def test_issue_checks_readiness(self, channel):
        channel.issue(act(bg=0, ba=0), 0)
        with pytest.raises(RuntimeError):
            channel.issue(act(bg=0, ba=1), 0)  # violates tRRD

    def test_total_activations_across_ranks(self):
        cfg = DeviceConfig.tiny(ranks=2)
        channel = Channel(cfg)
        channel.issue(act(rank_=0), 0)
        channel.issue(act(rank_=1), 1)  # different rank: no tRRD constraint
        assert channel.total_activations() == 2

    def test_rank_isolation_for_refresh(self):
        cfg = DeviceConfig.tiny(ranks=2)
        channel = Channel(cfg)
        done = channel.issue(Command(CommandType.REF, rank=0), 0)
        # Rank 1 can still activate while rank 0 refreshes.
        assert channel.ready(act(rank_=1), 1)
        assert done == channel.timing.trfc

"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(`pip install -e .` requires the ``wheel`` package, which offline
environments may lack); running ``pytest`` from the repository root always
works.

Markers (``bench_smoke``, ``fuzz_smoke``) are registered in ``pytest.ini``
so ``-m`` selection is warning-free everywhere.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

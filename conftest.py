"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(`pip install -e .` requires the ``wheel`` package, which offline
environments may lack); running ``pytest`` from the repository root always
works.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: fast representative point of each figure sweep "
        "(exercises the parallel sweep path in tier-1 time budgets)",
    )

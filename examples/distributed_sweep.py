#!/usr/bin/env python3
"""Distributed sweep: a broker and two socket workers on this machine.

Opens a ``Session(backend="cluster")`` — which hosts a broker on a Unix
domain socket, materialises the spec's traces to an mmap'd columnar spool,
and elastically spawns up to two local worker processes against the
queue's backlog — then streams a figure sweep through it and verifies the
result is bit-identical to the serial path.

The same broker can serve workers on *other* hosts: point it at a TCP
address and start workers wherever the code is installed::

    python -m repro.cluster broker sweep.toml --listen 0.0.0.0:7777
    python -m repro.cluster worker --connect BROKER_HOST:7777 --jobs 8

Fault tolerance is part of the contract, not an accident: a worker that
dies mid-point has its point requeued, a worker running a stale spec is
rejected at handshake, and results are written through the persistent run
cache so a restarted broker resumes instead of recomputing.

Run with:  python examples/distributed_sweep.py
(or, like every example:  python -m repro.api examples)

Set ``REPRO_EXAMPLE_SCALE=tiny`` for a seconds-scale run (what the
``examples_smoke`` pytest tier and ``python -m repro.api examples`` use).
"""

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentSpec, Session
from repro.cluster import cluster_broker

TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "tiny"

WORKERS = 2
FIGURE = "fig6"
NRH = 64


def main() -> None:
    spec = ExperimentSpec.tiny() if TINY else ExperimentSpec.fast()

    print(f"== serial reference ({FIGURE}, nrh={NRH}) ==")
    with Session(spec, jobs=1, cache_dir="") as serial:
        reference = serial.figure(FIGURE, nrh=NRH)
        print(f"   {serial.runs_executed} simulation(s) in-process")

    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as scratch:
        endpoint = f"unix:{Path(scratch) / 'broker.sock'}"
        print(f"== cluster sweep: broker on {endpoint}, "
              f"{WORKERS} socket workers ==")
        with Session(spec, backend="cluster", broker=endpoint,
                     workers=WORKERS, cache_dir="") as cluster:
            # workers=WORKERS is an elastic ceiling: one warm worker
            # starts eagerly, the autoscaler grows the fleet while the
            # queue backlog exceeds the live workers, and idle workers
            # are reaped when the sweep drains.
            broker = cluster_broker(cluster)
            print(f"   fingerprint {cluster.fingerprint}")
            print(f"   trace spool at {cluster.spool_dir} "
                  "(workers mmap instead of regenerating)")
            figure = cluster.figure(FIGURE, nrh=NRH)
            stats = cluster.cluster_stats()
            print(f"   {broker.results_received} point(s) computed by "
                  f"{broker.workers_seen} worker connection(s); "
                  f"{broker.requeued_points} requeued; "
                  f"{stats['scheduled_by_cost']} cost-ordered, "
                  f"{stats['chunked_claims']} chunked claim(s), "
                  f"{stats['autoscale_events']} autoscale event(s)")

    identical = figure.as_dict() == reference.as_dict()
    print(f"cluster == serial: {identical}")
    if not identical:
        raise SystemExit("cluster sweep diverged from the serial path")
    for label, series in figure.series.items():
        values = ", ".join(f"{value:.3f}" for value in series.values)
        print(f"   {label:>14}: {values}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: pre-silicon analysis — is BreakHammer safe and cheap to add?

Before committing BreakHammer to a memory-controller design, an architect
wants to know (1) how much a coordinated multi-threaded adversary could still
hog preventive actions without being detected (paper §5.2 / Fig. 5) and
(2) what the mechanism costs in storage, area, and latency (paper §6).

Both analyses are closed-form, so this example runs instantly; the Fig. 5
bound and the hardware table come straight from a :class:`repro.api.Session`
(they are spec artefacts like any sweep figure, just with empty run grids).

Run with:  python examples/security_and_hardware_analysis.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentSpec, Session
from repro.core.hardware_model import HardwareCostModel
from repro.core.security import max_attacker_score_ratio
from repro.dram.config import DeviceConfig


def security_section(session: Session) -> None:
    print("=== Security: the Expression-2 bound (Fig. 5) ===\n")
    figure = session.figure("fig5")
    print("max undetected attacker score / benign average score")
    print(f"{'attacker threads':>18s}", end="")
    for th in (0.05, 0.35, 0.65, 0.95):
        print(f"  TH={th:4.2f}", end="")
    print()
    for pct in figure.x_values:
        print(f"{pct:17d}%", end="")
        for th in (0.05, 0.35, 0.65, 0.95):
            ratio = max_attacker_score_ratio(pct / 100.0, th)
            text = "  inf  " if ratio == float("inf") else f"{ratio:7.2f}"
            print(text, end="")
        print()
    print(f"\nFigure series reproduced through the API: "
          f"{', '.join(figure.labels())}")


def hardware_section(session: Session) -> None:
    print("\n=== Hardware cost (§6) ===\n")
    table = session.table("hw")
    print(f"{table.title} (4 threads x 1 channel):")
    for row in table.rows:
        print(f"  {row['quantity']}: {row['value']}")
    print("\nScaling:")
    for threads, channels in ((16, 2), (64, 8)):
        model = HardwareCostModel(num_threads=threads, channels=channels,
                                  device_config=DeviceConfig.ddr5_4800())
        report = model.report()
        print(f"{threads:3d} threads x {channels} channels: "
              f"{report.total_bits:5d} bits, "
              f"{report.area_mm2_total:.6f} mm² "
              f"({100 * report.xeon_area_fraction:.5f}% of a Xeon die), "
              f"decision latency {report.decision_latency_ns:.2f} ns "
              f"(tRRD {report.trrd_ns:.1f} ns, "
              f"{'OK' if report.fits_under_trrd else 'TOO SLOW'})")


def main() -> None:
    # Both artefacts are closed-form: the tiny spec never simulates.
    with Session(ExperimentSpec.tiny()) as session:
        security_section(session)
        hardware_section(session)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: choosing a RowHammer mitigation for a multi-tenant server.

A cloud operator deploying a DDR5 system needs to pick a RowHammer
mitigation mechanism.  This script compares all eight mechanisms from the
paper — each with and without BreakHammer — under a tenant mix that includes
a hostile co-tenant, reporting benign throughput, preventive-action counts
and DRAM energy, i.e. the quantities behind the paper's Figs. 8, 10 and 12.

Run with:  python examples/mitigation_comparison.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PAIRED_MECHANISMS, SimulationConfig, Simulator, SystemConfig, make_mix

CYCLES = 14_000
NRH = 128


def run(mechanism: str, breakhammer: bool):
    config = SystemConfig.fast_profile(
        mitigation=mechanism, nrh=NRH, breakhammer_enabled=breakhammer,
        sim_cycles=CYCLES,
    )
    mix = make_mix("HMLA", device=config.device, entries_per_core=3500,
                   attacker_entries=7000)
    simulator = Simulator(config, mix.traces,
                          SimulationConfig(max_cycles=CYCLES),
                          attacker_threads=mix.attacker_threads)
    stats = simulator.run().stats
    benign = sum(stats.ipc_by_thread[t] for t in mix.benign_threads)
    return {
        "benign_ipc": benign,
        "actions": stats.preventive_actions,
        "energy_mj": stats.energy_mj,
    }


def main() -> None:
    print(f"Tenant mix HMLA (hostile co-tenant), N_RH={NRH}, "
          f"{CYCLES} cycles per configuration\n")
    header = (f"{'mechanism':>10s} | {'benign IPC':>10s} {'+BH':>7s} | "
              f"{'actions':>8s} {'+BH':>6s} | {'energy mJ':>9s} {'+BH':>7s}")
    print(header)
    print("-" * len(header))
    baseline = run("none", False)
    for mechanism in PAIRED_MECHANISMS:
        plain = run(mechanism, False)
        paired = run(mechanism, True)
        print(f"{mechanism:>10s} | {plain['benign_ipc']:10.3f} "
              f"{paired['benign_ipc']:7.3f} | {plain['actions']:8d} "
              f"{paired['actions']:6d} | {plain['energy_mj']:9.4f} "
              f"{paired['energy_mj']:7.4f}")
    print("-" * len(header))
    print(f"{'no defense':>10s} | {baseline['benign_ipc']:10.3f} {'-':>7s} | "
          f"{baseline['actions']:8d} {'-':>6s} | "
          f"{baseline['energy_mj']:9.4f} {'-':>7s}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: choosing a RowHammer mitigation for a multi-tenant server.

A cloud operator deploying a DDR5 system needs to pick a RowHammer
mitigation mechanism.  This script compares the paper's mechanisms — each
with and without BreakHammer — under a tenant mix that includes a hostile
co-tenant, reporting benign throughput, preventive-action counts and DRAM
energy, i.e. the quantities behind the paper's Figs. 8, 10 and 12.

The whole comparison grid is submitted as ``repro.api`` futures up front
and consumed in completion order: on a parallel session the table fills
as worker processes finish, not mechanism by mechanism.

Run with:  python examples/mitigation_comparison.py
Set ``REPRO_EXAMPLE_SCALE=tiny`` for a seconds-scale run.
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentSpec, RunPoint, Session, iter_completed

TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "tiny"

NRH = 128
MIX = "HMLA"
MECHANISMS = ("para", "graphene", "rfm") if TINY else (
    "para", "graphene", "hydra", "twice", "aqua", "rega", "rfm", "prac")

SPEC = ExperimentSpec(
    sim_cycles=1_200 if TINY else 14_000,
    entries_per_core=500 if TINY else 3_500,
    attacker_entries=700 if TINY else 7_000,
    nrh_sweep=(NRH,),
    attack_mixes=(MIX,),
    benign_mixes=("HMLL",),
    mechanisms=MECHANISMS,
)


def main() -> None:
    print(f"Tenant mix {MIX} (hostile co-tenant), N_RH={NRH}, "
          f"{SPEC.sim_cycles} cycles per configuration\n")
    grid = [RunPoint(MIX, "none", NRH, False)] + [
        RunPoint(MIX, mechanism, NRH, breakhammer)
        for mechanism in MECHANISMS
        for breakhammer in (False, True)
    ]
    results = {}
    with Session(SPEC, jobs=None if TINY else 2) as session:
        mix = session.runner.mix(MIX)
        for handle in iter_completed(session.submit_grid(grid)):
            stats = handle.result()
            _mix_name, _seed, mechanism, _nrh, breakhammer = handle.key[:5]
            benign = sum(stats.ipc_by_thread[t] for t in mix.benign_threads)
            results[(mechanism, breakhammer)] = {
                "benign_ipc": benign,
                "actions": stats.preventive_actions,
                "energy_mj": stats.energy_mj,
            }

    header = (f"{'mechanism':>10s} | {'benign IPC':>10s} {'+BH':>7s} | "
              f"{'actions':>8s} {'+BH':>6s} | {'energy mJ':>9s} {'+BH':>7s}")
    print(header)
    print("-" * len(header))
    for mechanism in MECHANISMS:
        plain = results[(mechanism, False)]
        paired = results[(mechanism, True)]
        print(f"{mechanism:>10s} | {plain['benign_ipc']:10.3f} "
              f"{paired['benign_ipc']:7.3f} | {plain['actions']:8d} "
              f"{paired['actions']:6d} | {plain['energy_mj']:9.4f} "
              f"{paired['energy_mj']:7.4f}")
    baseline = results[("none", False)]
    print("-" * len(header))
    print(f"{'no defense':>10s} | {baseline['benign_ipc']:10.3f} {'-':>7s} | "
          f"{baseline['actions']:8d} {'-':>6s} | "
          f"{baseline['energy_mj']:9.4f} {'-':>7s}")


if __name__ == "__main__":
    main()

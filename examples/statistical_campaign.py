#!/usr/bin/env python3
"""Statistical campaign: every figure cell as mean ± 95% CI.

A spec with several ``seeds`` turns every figure cell into a statistic:
the sweep runs once per seed (same grid, different trace seeds) and the
figure aggregation folds the per-seed frames into per-cell means with
95% confidence-interval half-widths (``SeriesStats``).  The text report
renders multi-seed cells as ``mean±ci`` — single-seed runs are
byte-identical to the pre-statistics output.

The second half demonstrates an **adaptive campaign**:
``Session.figure(..., target_ci=)`` runs the base seed batch, then
escalates extra seeds *only for the cells whose CI half-width still
misses the target* — seed-insensitive cells keep the base sample count,
so precision is bought exactly where the simulation is noisy.

Run with:  python examples/statistical_campaign.py
(or, like every example:  python -m repro.api examples)

Set ``REPRO_EXAMPLE_SCALE=tiny`` for a seconds-scale run (what the
``examples_smoke`` pytest tier and ``python -m repro.api examples`` use).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.report import render_figure
from repro.api import ExperimentSpec, Session

TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "tiny"

FIGURE = "fig6"
NRH = 64
SEEDS = (0, 1, 2)
TARGET_CI = 0.05 if TINY else 0.02


def base_spec(**overrides) -> ExperimentSpec:
    if TINY:
        return ExperimentSpec.tiny(
            mechanisms=("para", "rfm"), **overrides
        )
    return ExperimentSpec.smoke(**overrides)


def main() -> None:
    spec = base_spec(seeds=SEEDS)

    print(f"== multi-seed campaign: {FIGURE} over seeds {SEEDS} ==")
    with Session(spec, cache_dir="") as session:
        figure = session.figure(FIGURE, nrh=NRH)
        print(f"   {session.runs_executed} simulation(s) "
              f"({len(SEEDS)}x the single-seed grid)")
    print(render_figure(figure))
    for label, series in figure.series.items():
        widest = max(cell.ci95 for cell in series.stats)
        print(f"   {label:>14}: widest 95% CI half-width {widest:.4f} "
              f"over n={series.stats[0].n} seeds")

    print(f"\n== adaptive campaign: target_ci={TARGET_CI} ==")
    with Session(base_spec(seeds=(0, 1)), cache_dir="") as session:
        adaptive = session.figure(FIGURE, nrh=NRH,
                                  target_ci=TARGET_CI, max_seeds=6)
        print(f"   {session.runs_executed} simulation(s): base batch of 2 "
              "seeds, then extra seeds for wide cells only")
    for label, series in adaptive.series.items():
        counts = sorted({cell.n for cell in series.stats})
        widest = max(cell.ci95 for cell in series.stats)
        met = "met" if widest <= TARGET_CI else "budget-capped"
        print(f"   {label:>14}: n={'/'.join(map(str, counts))} seeds, "
              f"widest ci95 {widest:.4f} ({met})")


if __name__ == "__main__":
    main()

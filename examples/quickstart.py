#!/usr/bin/env python3
"""Quickstart: run one simulation with and without BreakHammer.

Builds a four-core system (three benign applications + one RowHammer
attacker), attaches the DDR5 Refresh-Management (RFM) mitigation at a low
RowHammer threshold, and compares benign performance with and without
BreakHammer.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import SimulationConfig, Simulator, SystemConfig, make_mix

CYCLES = 20_000
NRH = 256
MECHANISM = "rfm"


def run(breakhammer_enabled: bool):
    config = SystemConfig.fast_profile(
        mitigation=MECHANISM,
        nrh=NRH,
        breakhammer_enabled=breakhammer_enabled,
        sim_cycles=CYCLES,
    )
    mix = make_mix("HHMA", device=config.device, entries_per_core=5000,
                   attacker_entries=10_000)
    simulator = Simulator(config, mix.traces,
                          SimulationConfig(max_cycles=CYCLES),
                          attacker_threads=mix.attacker_threads)
    result = simulator.run()
    return result.stats, mix


def main() -> None:
    print(f"{MECHANISM.upper()} at N_RH={NRH}, mix HHMA (3 benign + 1 attacker), "
          f"{CYCLES} controller cycles\n")
    baseline, mix = run(breakhammer_enabled=False)
    with_bh, _ = run(breakhammer_enabled=True)

    def benign_ipc(stats):
        return sum(stats.ipc_by_thread[t] for t in mix.benign_threads)

    print(f"{'':32s}{'without BH':>14s}{'with BH':>14s}")
    print(f"{'benign IPC (sum)':32s}{benign_ipc(baseline):14.3f}"
          f"{benign_ipc(with_bh):14.3f}")
    print(f"{'attacker IPC':32s}{baseline.ipc_by_thread[3]:14.3f}"
          f"{with_bh.ipc_by_thread[3]:14.3f}")
    print(f"{'preventive actions':32s}{baseline.preventive_actions:14d}"
          f"{with_bh.preventive_actions:14d}")
    print(f"{'mean benign read latency (cyc)':32s}"
          f"{baseline.mean_read_latency():14.1f}"
          f"{with_bh.mean_read_latency():14.1f}")
    print(f"{'DRAM energy (mJ)':32s}{baseline.energy_mj:14.4f}"
          f"{with_bh.energy_mj:14.4f}")

    bh = with_bh.breakhammer_stats
    print("\nBreakHammer view:")
    print("  suspect detections per thread:",
          bh["stats"]["suspects_by_thread"])
    print("  final MSHR quotas            :",
          {t["thread_id"]: t["quota"] for t in bh["throttler"]["threads"]})
    speedup = benign_ipc(with_bh) / max(1e-9, benign_ipc(baseline)) - 1.0
    print(f"\nBenign speedup from BreakHammer: {100 * speedup:.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run one simulation with and without BreakHammer.

Builds a four-core system (three benign applications + one RowHammer
attacker), attaches the DDR5 Refresh-Management (RFM) mitigation at a low
RowHammer threshold, and compares benign performance with and without
BreakHammer — through the declarative ``repro.api`` surface: an
:class:`~repro.api.ExperimentSpec` describes the experiment, a
:class:`~repro.api.Session` owns execution, and each configuration is a
:class:`~repro.api.RunHandle` future.

Run with:  python examples/quickstart.py
(or, like every example:  python -m repro.api examples)

Set ``REPRO_EXAMPLE_SCALE=tiny`` for a seconds-scale run (what the
``examples_smoke`` pytest tier and ``python -m repro.api examples`` use).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentSpec, Session

TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "tiny"

MECHANISM = "rfm"
NRH = 256
MIX = "HHMA"

SPEC = ExperimentSpec(
    sim_cycles=1_500 if TINY else 20_000,
    entries_per_core=600 if TINY else 5_000,
    attacker_entries=800 if TINY else 10_000,
    nrh_sweep=(NRH,),
    attack_mixes=(MIX,),
    benign_mixes=("HHMM",),
    mechanisms=(MECHANISM,),
)


def main() -> None:
    print(f"{MECHANISM.upper()} at N_RH={NRH}, mix {MIX} "
          f"(3 benign + 1 attacker), {SPEC.sim_cycles} controller cycles\n")
    with Session(SPEC) as session:
        # Two futures; on a parallel session (jobs=2) they run concurrently.
        handle_base = session.submit(MIX, MECHANISM, NRH, breakhammer=False)
        handle_bh = session.submit(MIX, MECHANISM, NRH, breakhammer=True)
        baseline = handle_base.result()
        with_bh = handle_bh.result()
        mix = session.runner.mix(MIX)

        def benign_ipc(stats):
            return sum(stats.ipc_by_thread[t] for t in mix.benign_threads)

        attacker = mix.attacker_threads[0]
        print(f"{'':32s}{'without BH':>14s}{'with BH':>14s}")
        print(f"{'benign IPC (sum)':32s}{benign_ipc(baseline):14.3f}"
              f"{benign_ipc(with_bh):14.3f}")
        print(f"{'attacker IPC':32s}{baseline.ipc_by_thread[attacker]:14.3f}"
              f"{with_bh.ipc_by_thread[attacker]:14.3f}")
        print(f"{'preventive actions':32s}{baseline.preventive_actions:14d}"
              f"{with_bh.preventive_actions:14d}")
        print(f"{'mean benign read latency (cyc)':32s}"
              f"{baseline.mean_read_latency():14.1f}"
              f"{with_bh.mean_read_latency():14.1f}")
        print(f"{'DRAM energy (mJ)':32s}{baseline.energy_mj:14.4f}"
              f"{with_bh.energy_mj:14.4f}")

        bh = with_bh.breakhammer_stats
        print("\nBreakHammer view:")
        print("  suspect detections per thread:",
              bh["stats"]["suspects_by_thread"])
        print("  final MSHR quotas            :",
              {t["thread_id"]: t["quota"] for t in bh["throttler"]["threads"]})
        speedup = benign_ipc(with_bh) / max(1e-9, benign_ipc(baseline)) - 1.0
        print(f"\nBenign speedup from BreakHammer: {100 * speedup:.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: a memory performance attack that exploits preventive actions.

Reproduces the paper's motivating scenario (§1, §8.1): a single malicious
thread hammers a handful of DRAM rows, forcing the deployed RowHammer
mitigation mechanism to perform many preventive actions, which starves the
benign applications sharing the memory system.  The script sweeps the
RowHammer threshold and shows how the attack's damage grows as DRAM becomes
more vulnerable — and how BreakHammer contains it.

Run with:  python examples/memory_performance_attack.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import SimulationConfig, Simulator, SystemConfig, make_mix

CYCLES = 16_000
MECHANISM = "rfm"
NRH_SWEEP = (4096, 1024, 256, 64)


def run(nrh: int, breakhammer: bool):
    config = SystemConfig.fast_profile(
        mitigation=MECHANISM, nrh=nrh, breakhammer_enabled=breakhammer,
        sim_cycles=CYCLES,
    )
    mix = make_mix("HHMA", device=config.device, entries_per_core=4000,
                   attacker_entries=8000)
    simulator = Simulator(config, mix.traces,
                          SimulationConfig(max_cycles=CYCLES),
                          attacker_threads=mix.attacker_threads)
    stats = simulator.run().stats
    benign = sum(stats.ipc_by_thread[t] for t in mix.benign_threads)
    return benign, stats.preventive_actions


def main() -> None:
    print(f"Mechanism: {MECHANISM} | mix HHMA | {CYCLES} cycles per point\n")
    print(f"{'N_RH':>6s} {'benign IPC':>12s} {'benign IPC+BH':>14s} "
          f"{'actions':>9s} {'actions+BH':>11s} {'BH gain':>8s}")
    no_attack_reference = None
    for nrh in NRH_SWEEP:
        benign, actions = run(nrh, breakhammer=False)
        benign_bh, actions_bh = run(nrh, breakhammer=True)
        gain = 100.0 * (benign_bh / max(1e-9, benign) - 1.0)
        print(f"{nrh:6d} {benign:12.3f} {benign_bh:14.3f} "
              f"{actions:9d} {actions_bh:11d} {gain:7.1f}%")
    print("\nAs N_RH decreases the mitigation performs more preventive work,"
          "\nthe attacker's leverage grows, and BreakHammer's benefit grows "
          "with it.")


if __name__ == "__main__":
    main()

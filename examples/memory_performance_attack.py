#!/usr/bin/env python3
"""Scenario: a memory performance attack that exploits preventive actions.

Reproduces the paper's motivating scenario (§1, §8.1): a single malicious
thread hammers a handful of DRAM rows, forcing the deployed RowHammer
mitigation mechanism to perform many preventive actions, which starves the
benign applications sharing the memory system.  The script sweeps the
RowHammer threshold and shows how the attack's damage grows as DRAM becomes
more vulnerable — and how BreakHammer contains it.

The N_RH sweep is declared as an :class:`~repro.api.ExperimentSpec` and
submitted through a :class:`~repro.api.Session` as one batch of futures.

Run with:  python examples/memory_performance_attack.py
Set ``REPRO_EXAMPLE_SCALE=tiny`` for a seconds-scale run.
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentSpec, RunPoint, Session

TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "tiny"

MECHANISM = "rfm"
MIX = "HHMA"
NRH_SWEEP = (1024, 64) if TINY else (4096, 1024, 256, 64)

SPEC = ExperimentSpec(
    sim_cycles=1_200 if TINY else 16_000,
    entries_per_core=500 if TINY else 4_000,
    attacker_entries=700 if TINY else 8_000,
    nrh_sweep=NRH_SWEEP,
    attack_mixes=(MIX,),
    benign_mixes=("HHMM",),
    mechanisms=(MECHANISM,),
)


def main() -> None:
    print(f"Mechanism: {MECHANISM} | mix {MIX} | "
          f"{SPEC.sim_cycles} cycles per point\n")
    print(f"{'N_RH':>6s} {'benign IPC':>12s} {'benign IPC+BH':>14s} "
          f"{'actions':>9s} {'actions+BH':>11s} {'BH gain':>8s}")
    with Session(SPEC) as session:
        mix = session.runner.mix(MIX)
        # The whole sweep is in flight before the first row prints.
        handles = {
            (nrh, bh): session.submit_point(RunPoint(MIX, MECHANISM, nrh, bh))
            for nrh in NRH_SWEEP for bh in (False, True)
        }
        for nrh in NRH_SWEEP:
            plain = handles[(nrh, False)].result()
            paired = handles[(nrh, True)].result()
            benign = sum(plain.ipc_by_thread[t] for t in mix.benign_threads)
            benign_bh = sum(paired.ipc_by_thread[t]
                            for t in mix.benign_threads)
            gain = 100.0 * (benign_bh / max(1e-9, benign) - 1.0)
            print(f"{nrh:6d} {benign:12.3f} {benign_bh:14.3f} "
                  f"{plain.preventive_actions:9d} "
                  f"{paired.preventive_actions:11d} {gain:7.1f}%")
    print("\nAs N_RH decreases the mitigation performs more preventive work,"
          "\nthe attacker's leverage grows, and BreakHammer's benefit grows "
          "with it.")


if __name__ == "__main__":
    main()

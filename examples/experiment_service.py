#!/usr/bin/env python3
"""Experiment service: serve figures over HTTP from a long-lived daemon.

Starts the ``repro.service`` server in-process on an ephemeral port,
registers an :class:`~repro.api.ExperimentSpec` over the wire, follows an
asynchronous figure job point-by-point, and then demonstrates the point
of the daemon: the second request for the same figure is a TTL-cache hit
served in microseconds, bit-identical to the computed one, with the
server's run counter proving no new simulation happened.

The same server runs standalone as ``python -m repro.service --listen
HOST:PORT`` (quota and cache knobs are ``REPRO_SERVICE_*`` environment
variables; see ROADMAP.md "Serving figures").

Run with:  python examples/experiment_service.py
(or, like every example:  python -m repro.api examples)

Set ``REPRO_EXAMPLE_SCALE=tiny`` for a seconds-scale run (what the
``examples_smoke`` pytest tier and ``python -m repro.api examples`` use).
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceClient, start_service

TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "tiny"

PROFILE = "tiny" if TINY else "smoke"
FIGURE = "fig8"


def main() -> None:
    with start_service(cache_dir="", ttl=600.0) as running:
        print(f"service listening on http://{running.address} "
              f"(TTL {running.service.figure_cache.ttl:g}s)")
        client = ServiceClient(running.address, client_id="example")

        fingerprint = client.register_spec({"profile": PROFILE})
        print(f"registered profile {PROFILE!r}: fingerprint {fingerprint}")

        job = client.submit_figure(fingerprint, FIGURE)
        print(f"submitted {FIGURE} as job {job['job']}")

        def show(state) -> None:
            progress = state["progress"]
            print(f"  job {state['job']}: {state['state']:8s} "
                  f"{progress['completed']}/{progress['total']} points")

        done = client.wait_job(job["job"], on_progress=show, poll=0.2)
        print(f"job finished: {done['progress']['executed']} points "
              "actually simulated")

        started = time.perf_counter()
        figure, state = client.figure_response(fingerprint, FIGURE)
        first_ms = 1e3 * (time.perf_counter() - started)
        started = time.perf_counter()
        again, state_again = client.figure_response(fingerprint, FIGURE)
        second_ms = 1e3 * (time.perf_counter() - started)
        print(f"\nGET {FIGURE}: {state} in {first_ms:.1f} ms, "
              f"then {state_again} in {second_ms:.1f} ms "
              f"(identical: {figure == again})")

        mechanism = sorted(figure["series"])[0]
        series = figure["series"][mechanism]
        print(f"  {figure['figure_id']} {mechanism}: "
              f"{[round(v, 3) for v in series]}")

        stats = running.service.statsz()
        cache = stats["figure_cache"]
        session = stats["sessions"][fingerprint]
        print(f"\nserver stats: {cache['hits']} cache hits / "
              f"{cache['misses']} misses; "
              f"{session['runs_executed']} sweep points executed; "
              f"client served {stats['clients']['example']['served']} "
              "responses")


if __name__ == "__main__":
    main()

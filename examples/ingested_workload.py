#!/usr/bin/env python3
"""Ingest an external memory trace and sweep it like a built-in mix.

Generates a small text trace in the external interchange format
(``<bubble> <L|S> <addr> [flags]``, ``#`` comments, gzip accepted),
ingests it into a workload catalog, and then addresses it from an
:class:`~repro.api.ExperimentSpec` by name — ``"ingest:demo x4"`` sits
in ``benign_mixes`` next to the letter mixes and flows through the same
cache/spool/parallel machinery.  The catalog digest is folded into the
session fingerprint, so re-ingesting a modified trace can never be
served from a stale cache.

Equivalent CLI:

    python -m repro.api workloads ingest demo.trace --name demo \
        --workload-dir ./catalog
    python -m repro.api workloads list --workload-dir ./catalog

Run with:  python examples/ingested_workload.py

Set ``REPRO_EXAMPLE_SCALE=tiny`` for a seconds-scale run (what the
``examples_smoke`` pytest tier and ``python -m repro.api examples`` use).
"""

import dataclasses
import os
import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentSpec, Session
from repro.workloads.ingest import WORKLOAD_DIR_ENV, WorkloadCatalog

TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "tiny"

TRACE_LINES = 400 if TINY else 5_000


def write_demo_trace(path: Path) -> None:
    """A pointer-chase-flavoured synthetic trace in interchange format."""

    rng = random.Random(11)
    with open(path, "w") as handle:
        handle.write("# demo: synthetic pointer-chase client\n")
        for _ in range(TRACE_LINES):
            op = "S" if rng.random() < 0.25 else "L"
            address = rng.randrange(0, 1 << 28) & ~0x3F
            bubble = rng.randrange(0, 16)
            handle.write(f"{bubble} {op} {address:#x}\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        trace_path = Path(workdir) / "demo.trace"
        write_demo_trace(trace_path)

        catalog = WorkloadCatalog(Path(workdir) / "catalog")
        entry = catalog.ingest(trace_path, name="demo")
        characterization = dict(entry.characterization)
        print(f"ingested {entry.name}: {entry.entries} entries, "
              f"rbmpki {characterization['rbmpki']}, "
              f"digest {entry.trace_digest[:12]}")

        # Spec validation resolves catalog names when the spec is built,
        # so point the environment at the catalog first.
        os.environ[WORKLOAD_DIR_ENV] = str(catalog.directory)
        base = ExperimentSpec.tiny() if TINY else ExperimentSpec.fast()
        spec = dataclasses.replace(
            base, benign_mixes=("MMLL", "ingest:demo x4"))
        print(f"spec fingerprint (catalog digest folded in): "
              f"{spec.fingerprint()[:12]}\n")

        with Session(spec, workload_dir=str(catalog.directory)) as session:
            figure = session.figure("fig13")
        print(f"{figure.title}")
        print(f"  mixes: {', '.join(figure.x_values)}")
        for label, series in figure.series.items():
            cells = "  ".join(f"{value:6.3f}" for value in series.values)
            print(f"  {label:12s} {cells}")
        print("\nThe ingested mix ran through the same sweep path as the "
              "letter mixes;\nits column is the 'ingest:demo x4' entry "
              "above.")


if __name__ == "__main__":
    main()

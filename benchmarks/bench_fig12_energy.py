"""Figure 12 — DRAM energy vs N_RH (attacker present).

DRAM energy of each mechanism with and without BreakHammer, normalised to a
no-mitigation baseline.  The paper reports that baseline mechanisms consume
4.4x more energy on average as N_RH drops from 4K to 64 and that BreakHammer
reduces energy by 55.4% on average; at this scale the trend (energy grows
with preventive work, BreakHammer curbs it) is what is checked.
"""

from conftest import run_once


def test_fig12_dram_energy(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig12")
    emit(figure)
    for mechanism in session.spec.mechanisms:
        base = figure.get(mechanism).values
        paired = figure.get(f"{mechanism}+BH").values
        assert all(v > 0 for v in base + paired)
        # Paired energy never exceeds the baseline by more than noise at the
        # lowest threshold.
        assert paired[-1] <= base[-1] * 1.15

"""Figure 15 — all-benign performance of mechanism+BH vs N_RH.

Normalised to the mechanism alone at each N_RH.  The paper observes slight
improvements below N_RH = 1024 and neutrality elsewhere.
"""

from conftest import run_once


def test_fig15_benign_performance_scaling(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig15")
    emit(figure)
    for series in figure.series.values():
        assert all(0.8 <= v <= 1.25 for v in series.values)

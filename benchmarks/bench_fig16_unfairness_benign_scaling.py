"""Figure 16 — all-benign unfairness of mechanism+BH vs N_RH.

Normalised to the mechanism alone.  The paper reports a 0.9% average
increase with occasional excursions (best-case -29.1%, worst-case +36.4%)
at very low thresholds, where benign applications themselves trigger
preventive actions and are occasionally misflagged (18.7% of simulations).
"""

from conftest import run_once


def test_fig16_benign_unfairness_scaling(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig16")
    emit(figure)
    for series in figure.series.values():
        # Bounded excursions, mirroring the paper's reported range.
        assert all(0.6 <= v <= 1.5 for v in series.values)

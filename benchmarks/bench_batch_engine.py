"""Batch engine vs serial fast vs cycle on one N_RH column.

The lockstep batch engine's value proposition: an N_RH column — the sweep
shape behind Figs. 8/9/10/12, here (HHMA, graphene) × N_RH × BreakHammer,
eight grid points — executed as **one** multi-lane
:class:`repro.sim.batch.BatchSimulator` run, with the vectorised
FR-FCFS+Cap scan computing all lanes' scheduling decisions as one array
program per global cycle, versus the same eight points run back-to-back
under the serial ``fast`` engine, versus the per-cycle ``cycle``
reference (timed on a two-point subset: it is an order of magnitude
slower and its cost is linear in the points).

Honest numbers: the batch engine is bit-identical by construction
(predictions are validated against live controller state before being
consumed), which bounds its speedup — roughly three quarters of a
saturated column's runtime is per-lane tick work (cores, LLC, controller
bookkeeping) that batching cannot share, so expect ~1.1–1.4x over serial
fast on saturated columns, not multiples.  The cycle comparison shows the
combined effect: batch ≈ fast ≈ 10–30x over the reference.

Timings land in ``benchmarks/results/BENCH_sweep.json`` (see
``conftest.record_sweep``); bit-identity of every lane against solo fast
runs is asserted here and generatively by ``tests/test_fuzz_smoke.py``.
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.sim.batch import BatchSimulator
from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.simulator import Simulator
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import make_mix

from conftest import record_sweep, run_once

_MIX = "HHMA"
_MECHANISM = "graphene"
_NRH_COLUMN = (4096, 1024, 256, 64)
_COLUMN_ID = f"{_MIX}-{_MECHANISM}-nrh-column"


def _scale():
    profile = os.environ.get("REPRO_BENCH_PROFILE", "fast").lower()
    if profile == "smoke":
        return dict(sim_cycles=3_000, entries=1_200, attacker=1_600)
    if profile == "full":
        return dict(sim_cycles=24_000, entries=8_000, attacker=12_000)
    return dict(sim_cycles=12_000, entries=4_000, attacker=6_000)


def _column_simulators(engine: str):
    """Fresh simulators for the eight-point column, in grid order."""

    scale = _scale()
    base = SystemConfig.fast_profile(sim_cycles=scale["sim_cycles"])
    mix = make_mix(
        _MIX, device=base.device, mapping=base.mapping,
        entries_per_core=scale["entries"],
        attacker_entries=scale["attacker"], seed=0,
        attacker_config=AttackerConfig(entries=scale["attacker"], seed=0),
    )
    simulators = []
    for nrh in _NRH_COLUMN:
        for breakhammer in (False, True):
            config = base.with_(mitigation=_MECHANISM, nrh=nrh,
                                breakhammer_enabled=breakhammer)
            simulators.append(Simulator(
                config, mix.traces,
                SimulationConfig(max_cycles=scale["sim_cycles"],
                                 engine=engine),
                attacker_threads=mix.attacker_threads,
            ))
    return simulators


def _timed(func):
    started = time.perf_counter()
    value = func()
    return value, time.perf_counter() - started


#: Serial-fast reference results, shared by the identity assertions.
_FAST_STATS: list = []


@pytest.mark.bench_smoke
def test_column_serial_fast(benchmark):
    def sweep():
        sims = _column_simulators("fast")
        (results, seconds) = _timed(lambda: [s.run() for s in sims])
        record_sweep(figure=_COLUMN_ID, engine="fast", jobs=1,
                     seconds=seconds, runs=len(results))
        _FAST_STATS.clear()
        _FAST_STATS.extend(dataclasses.asdict(r.stats) for r in results)
        return len(results)

    assert run_once(benchmark, sweep) == 2 * len(_NRH_COLUMN)


@pytest.mark.bench_smoke
def test_column_batch(benchmark):
    def sweep():
        sims = _column_simulators("fast")  # BatchSimulator drives directly
        batch = BatchSimulator(sims)
        (results, seconds) = _timed(batch.run)
        scan = batch.scan_stats()
        record_sweep(figure=_COLUMN_ID, engine="batch", jobs=1,
                     seconds=seconds, runs=len(results),
                     eligible_lanes=scan["eligible_lanes"],
                     predictions_used=scan["predictions_used"],
                     mispredictions=scan["mispredictions"])
        return results, scan

    results, scan = run_once(benchmark, sweep)
    # The vectorised scan really drove the lanes, and never mispredicted
    # (mispredictions would silently fall back to the scalar walk).
    assert scan["eligible_lanes"] == len(results)
    assert scan["predictions_used"] > 0
    assert scan["mispredictions"] == 0
    # Bit-identical to the serial fast column, lane for lane.
    if _FAST_STATS:  # populated when the fast benchmark ran first
        batch_stats = [dataclasses.asdict(r.stats) for r in results]
        assert batch_stats == _FAST_STATS


@pytest.mark.bench_smoke
def test_column_cycle_reference_subset(benchmark):
    def sweep():
        # First and last column points only: the reference engine costs
        # ~sim_cycles ticks per run, so the full column would dominate
        # the whole benchmark suite's wall-clock.
        sims = _column_simulators("cycle")
        subset = [sims[0], sims[-1]]
        (results, seconds) = _timed(lambda: [s.run() for s in subset])
        record_sweep(figure=_COLUMN_ID, engine="cycle", jobs=1,
                     seconds=seconds, runs=len(results),
                     note="2-point subset of the 8-point column")
        return len(results)

    assert run_once(benchmark, sweep) == 2

"""§6 — hardware complexity: storage, area, and latency of BreakHammer."""

import pytest

from conftest import run_once


def test_hardware_complexity(benchmark, session, emit):
    table = run_once(benchmark, session.table, "hw")
    emit(table)
    values = {row["quantity"]: row["value"] for row in table.rows}
    assert values["bits_per_thread"] == 82
    assert values["area_mm2_per_channel"] == pytest.approx(0.000105, rel=1e-6)
    assert values["xeon_area_fraction"] < 1e-5
    assert values["decision_latency_ns"] == pytest.approx(0.667, abs=0.01)
    assert values["fits_under_trrd"] is True

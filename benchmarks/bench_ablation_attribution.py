"""Ablation — score attribution: proportional vs last-activator-takes-all.

The paper attributes each preventive action to threads *proportionally* to
their activation share since the previous action (§4.1), arguing in §5.3
that this defeats score-manipulation attacks where the adversary hammers a
shared row almost to the trigger point and lets a benign thread perform the
final, triggering activation.

This ablation replays exactly that scenario against both attribution rules
(using the score/suspect components directly, no DRAM simulation needed) and
shows that only the proportional rule keeps blaming the attacker.
"""

from conftest import run_once

from repro.core.scores import DualCounterSet
from repro.core.suspect import SuspectDetector


def _run_scenario(proportional: bool, actions: int = 60,
                  attacker_share: float = 0.9, num_threads: int = 4):
    """The §5.3 manipulation scenario; returns suspect counts per thread."""

    scores = DualCounterSet(num_threads)
    detector = SuspectDetector(threat_threshold=4.0, outlier_threshold=0.65)
    suspect_counts = {t: 0 for t in range(num_threads)}
    attacker, victim = 3, 0
    for _ in range(actions):
        # The attacker performs most activations ...
        activations = {t: 1 for t in range(num_threads)}
        activations[attacker] = int(attacker_share * 30)
        # ... but the *victim* performs the final triggering activation.
        activations[victim] += 1
        total = sum(activations.values())
        if proportional:
            for thread, count in activations.items():
                scores.add(thread, count / total)
        else:
            scores.add(victim, 1.0)  # last activator takes the whole blame
        decision = detector.evaluate(scores.scores())
        for thread in decision.suspects:
            suspect_counts[thread] += 1
    return suspect_counts


def test_ablation_score_attribution(benchmark, emit):
    def run_both():
        return _run_scenario(True), _run_scenario(False)

    proportional, winner_take_all = run_once(benchmark, run_both)
    print("\nproportional attribution  :", proportional)
    print("last-activator attribution:", winner_take_all)
    # Proportional attribution blames the attacker, never the framed victim.
    assert proportional[3] > 0
    assert proportional[0] == 0
    # The naive rule is manipulable: the benign victim gets framed.
    assert winner_take_all[0] > 0
    assert winner_take_all[3] == 0

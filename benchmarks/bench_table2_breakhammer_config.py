"""Table 2 — BreakHammer configuration (paper values vs scaled values)."""

from conftest import run_once


def test_table2_breakhammer_configuration(benchmark, session, emit):
    table = run_once(benchmark, session.table, "table2")
    emit(table)
    rows = {row["parameter"]: row for row in table.rows}
    assert rows["TH_window_ms"]["paper_value"] == 64.0
    assert rows["TH_threat"]["paper_value"] == 32.0
    assert rows["TH_outlier"]["paper_value"] == 0.65
    assert rows["P_oldsuspect"]["paper_value"] == 1
    assert rows["P_newsuspect"]["paper_value"] == 10

"""Figure 10 — RowHammer-preventive action counts vs N_RH.

For each mechanism (REGA excluded, as in the paper's footnote 10), the
number of preventive actions performed with and without BreakHammer,
normalised to the mechanism alone at the largest N_RH.  The paper reports
that actions grow as N_RH shrinks and that BreakHammer removes 71.6% of them
on average.
"""

from conftest import run_once


def test_fig10_preventive_actions(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig10")
    emit(figure)
    assert not any(label.startswith("rega") for label in figure.series)
    for mechanism in session.spec.mechanisms:
        if mechanism == "rega":
            continue
        base = figure.get(mechanism).values
        # Preventive actions are non-decreasing as N_RH shrinks.
        assert base[-1] >= base[0] - 1e-6

"""Figure 2 — motivation: mitigation overheads grow as N_RH decreases.

Reproduces the paper's Fig. 2: normalized weighted speedup of benign
workloads under Hydra, RFM, PARA and AQUA (no BreakHammer, no attacker) as
the RowHammer threshold shrinks.  The paper reports degradations from 18.7%
(Hydra) to 65.9% (AQUA) at N_RH = 64; at this harness's scale the absolute
drop is smaller but the ordering and the downward trend hold.
"""

from conftest import run_once


def test_fig02_motivation(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig2")
    emit(figure)
    for label, series in figure.series.items():
        # Overhead must not shrink as N_RH decreases (downward trend).
        assert series.values[-1] <= series.values[0] + 0.10, label
    assert set(figure.series) == {"hydra", "rfm", "para", "aqua"}

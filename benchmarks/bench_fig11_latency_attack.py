"""Figure 11 — benign memory latency percentiles under attack (low N_RH).

For every mechanism at the lowest N_RH, the benign applications' memory
latency percentile curve with and without BreakHammer, plus the no-defense
baseline.  The paper observes BreakHammer reduces benign latency, sometimes
below the no-defense baseline, because it removes the attacker's queue and
bank interference.
"""

from conftest import run_once


def test_fig11_latency_under_attack(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig11")
    emit(figure)
    for series in figure.series.values():
        assert series.values == sorted(series.values)  # percentiles monotone
    # BreakHammer should not raise the benign tail latency for most
    # mechanisms at the lowest threshold.
    better = 0
    for mechanism in session.spec.mechanisms:
        base_tail = figure.get(mechanism).values[-1]
        bh_tail = figure.get(f"{mechanism}+BH").values[-1]
        if bh_tail <= base_tail * 1.10:
            better += 1
    assert better >= len(session.spec.mechanisms) // 2

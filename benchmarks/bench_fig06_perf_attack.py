"""Figure 6 — benign performance under attack, with vs without BreakHammer.

For each attack mix and each of the eight mechanisms, the benign
applications' weighted speedup of mechanism+BreakHammer is normalised to the
mechanism alone.  The paper reports an average improvement of 84.6% at
N_RH = 1K; the scaled harness shows the same direction (geomean > 1) with a
smaller magnitude.
"""

from conftest import run_once


def test_fig06_performance_under_attack(benchmark, session, emit):
    nrh = min(256, session.spec.nrh_default)
    figure = run_once(benchmark, session.figure, "fig6", nrh=nrh)
    emit(figure)
    geomeans = [series.values[-1] for series in figure.series.values()]
    # BreakHammer must help on average across mechanisms.
    assert sum(g > 1.0 for g in geomeans) >= len(geomeans) // 2
    assert max(geomeans) > 1.02

"""Figure 8 — performance scaling with N_RH (attacker present).

Weighted speedup of the benign applications, normalised to a no-mitigation
baseline, for every mechanism with and without BreakHammer across the N_RH
sweep.  The paper's qualitative structure: BreakHammer-paired mechanisms stay
above their baselines, and the gap widens as N_RH shrinks.
"""

from conftest import run_once


def test_fig08_performance_scaling(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig8")
    emit(figure)
    low_idx = len(figure.x_values) - 1  # smallest N_RH
    improvements = 0
    for mechanism in session.spec.mechanisms:
        base = figure.get(mechanism).values[low_idx]
        paired = figure.get(f"{mechanism}+BH").values[low_idx]
        if paired >= base - 1e-6:
            improvements += 1
    # At the lowest threshold BreakHammer helps (or at least never hurts)
    # for the majority of mechanisms.
    assert improvements >= len(session.spec.mechanisms) * 2 // 3

"""Ablation — Expression 1 quota policy vs gentler throttling.

Compares the paper's quota policy (divide by P_newsuspect = 10 on first
detection, subtract P_oldsuspect = 1 afterwards) against a gentler
halving-only policy (P_newsuspect = 2) in a full attack simulation, checking
that the aggressive first-step reduction is what recovers benign throughput.
"""

from conftest import run_once

from repro.core.breakhammer import BreakHammerConfig
from repro.sim.config import SimulationConfig, SystemConfig
from repro.sim.simulator import Simulator
from repro.workloads.attacker import AttackerConfig
from repro.workloads.mixes import make_mix

CYCLES = 12_000


def _benign_ipc(p_newsuspect: int) -> float:
    config = SystemConfig.fast_profile(
        mitigation="rfm", nrh=256, breakhammer_enabled=True,
        sim_cycles=CYCLES,
    )
    config = config.with_(breakhammer=BreakHammerConfig(
        window_ms=config.breakhammer.window_ms,
        threat_threshold=config.breakhammer.threat_threshold,
        outlier_threshold=config.breakhammer.outlier_threshold,
        p_oldsuspect=1,
        p_newsuspect=p_newsuspect,
    ))
    mix = make_mix("HHMA", device=config.device, entries_per_core=3000,
                   attacker_entries=6000,
                   attacker_config=AttackerConfig(entries=6000))
    simulator = Simulator(config, mix.traces,
                          SimulationConfig(max_cycles=CYCLES),
                          attacker_threads=mix.attacker_threads)
    stats = simulator.run().stats
    return sum(stats.ipc_by_thread[t] for t in mix.benign_threads)


def test_ablation_quota_policy(benchmark, emit):
    def run_both():
        return _benign_ipc(10), _benign_ipc(2)

    paper_policy, gentle_policy = run_once(benchmark, run_both)
    print(f"\nbenign IPC: paper policy (÷10)={paper_policy:.3f}, "
          f"gentle policy (÷2)={gentle_policy:.3f}")
    # The paper's aggressive first reduction must not be worse than the
    # gentle variant (it usually recovers more benign throughput).
    assert paper_policy >= gentle_policy * 0.97

"""Ingest throughput: external trace → catalog, cold and warm.

Measures the full ingest path (streaming parse, validation, columnar
write, characterization, manifest framing) in lines/second, then the
warm-catalog path (same source re-ingested: digest check only, no
parse/write).  Both wall-clocks land in ``BENCH_sweep.json`` so the
driver can trend them; the warm path should be orders of magnitude
cheaper than cold — it reads the source once to hash it and touches
nothing else.

Corpus size scales with ``REPRO_INGEST_LINES`` (default 50k lines —
a few MB of text, seconds-scale cold).
"""

from __future__ import annotations

import os
import random
import time

from repro.workloads.ingest import WorkloadCatalog

from conftest import record_sweep, run_once

LINES = int(os.environ.get("REPRO_INGEST_LINES", "50000"))


def _write_corpus(path, lines: int) -> None:
    rng = random.Random(2024)
    with open(path, "w") as handle:
        handle.write("# synthetic ingest benchmark corpus\n")
        for _ in range(lines):
            op = "S" if rng.random() < 0.3 else "L"
            address = rng.randrange(0, 1 << 34) & ~0x3F
            handle.write(f"{rng.randrange(0, 24)} {op} {address:#x}\n")


def test_ingest_cold_then_warm(benchmark, tmp_path):
    source = tmp_path / "corpus.trace"
    _write_corpus(source, LINES)
    catalog = WorkloadCatalog(tmp_path / "catalog")

    start = time.perf_counter()
    entry = run_once(benchmark, catalog.ingest, source, name="corpus")
    cold_seconds = time.perf_counter() - start
    assert entry.entries == LINES
    assert catalog.verify("corpus") == []
    record_sweep("ingest_cold", "n/a", 1, cold_seconds, 1,
                 lines=LINES,
                 lines_per_second=round(LINES / max(1e-9, cold_seconds)))

    start = time.perf_counter()
    warm = catalog.ingest(source, name="corpus")
    warm_seconds = time.perf_counter() - start
    assert warm == entry  # no-op re-ingest served from the manifest
    record_sweep("ingest_warm", "n/a", 1, warm_seconds, 0,
                 lines=LINES,
                 lines_per_second=round(LINES / max(1e-9, warm_seconds)))
    # Warm must never redo the columnar write/characterization.
    assert warm_seconds < cold_seconds

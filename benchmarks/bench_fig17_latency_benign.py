"""Figure 17 — all-benign memory latency percentiles (low N_RH).

The paper observes BreakHammer induces no latency overhead for benign-only
workloads at any percentile.
"""

from conftest import run_once


def test_fig17_latency_benign(benchmark, runner, emit):
    figure = run_once(benchmark, runner.figure17)
    emit(figure)
    for mechanism in runner.config.mechanisms:
        base = figure.get(mechanism).values
        paired = figure.get(f"{mechanism}+BH").values
        # Median benign latency must not be degraded beyond noise.
        assert paired[0] <= base[0] * 1.15 + 5

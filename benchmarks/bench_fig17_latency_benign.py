"""Figure 17 — all-benign memory latency percentiles (low N_RH).

The paper observes BreakHammer induces no latency overhead for benign-only
workloads at any percentile.
"""

from conftest import run_once


def test_fig17_latency_benign(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig17")
    emit(figure)
    for mechanism in session.spec.mechanisms:
        base = figure.get(mechanism).values
        paired = figure.get(f"{mechanism}+BH").values
        # Median benign latency must not be degraded beyond noise.
        assert paired[0] <= base[0] * 1.15 + 5

"""Figure 19 — sensitivity to TH_threat.

Weighted speedup for three TH_threat settings (scaled analogues of the
paper's 32 / 512 / 4096 sweep), normalised to the largest threshold, under
attack and with all-benign workloads at three N_RH points.  The paper picks
the smallest threshold because it maximises the benefit under attack while
staying near-neutral for benign workloads.
"""

from conftest import run_once


def test_fig19_th_threat_sensitivity(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig19")
    emit(figure)
    attack_series = [s for name, s in figure.series.items()
                     if name.startswith("attack")]
    benign_series = [s for name, s in figure.series.items()
                     if name.startswith("benign")]
    assert attack_series and benign_series
    # Under attack, a lower (more aggressive) threshold never hurts much.
    for series in attack_series:
        assert series.values[0] >= series.values[-1] * 0.9
    # For benign workloads every threshold stays close to neutral.
    for series in benign_series:
        assert all(0.8 <= v <= 1.25 for v in series.values)

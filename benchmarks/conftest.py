"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
the declarative :class:`repro.api.Session` surface (the legacy
``ExperimentRunner`` facade is deprecated — its constructor warns).  A
single session-scoped :class:`~repro.api.Session` is shared by all
benchmarks so that simulations common to several figures (e.g. the N_RH
sweep behind Figs. 8, 9, 10 and 12) are executed only once and memoised.

Scale is controlled by the ``REPRO_BENCH_PROFILE`` environment variable:

* ``fast`` (default) — the reduced sweep described in DESIGN.md §6,
* ``full``           — the paper's full 7-point N_RH sweep and all six mixes
  (expect a long run),
* ``smoke``          — minimal, for checking the harness itself.

The simulation engine is controlled by ``REPRO_ENGINE``:

* ``fast`` (default) — event-driven fast-forward engine,
* ``cycle``          — the per-cycle reference engine,
* ``batch``          — the lockstep batch engine: sweeps coalesce
  compatible grid points into one vectorised multi-lane run.

All engines produce identical statistics (asserted by
``tests/test_engine_equivalence.py``); the variable exists so regressions in
any engine can be timed and bisected independently.

Sweep-timing benchmarks additionally persist a machine-readable record,
``benchmarks/results/BENCH_sweep.json`` (one entry per measured sweep:
figure/column, engine, jobs/backend, wall-clock seconds, runs executed),
via :func:`record_sweep`, so engine and backend regressions can be
tracked numerically across invocations instead of eyeballed from
pytest-benchmark tables.

Sweep execution is controlled by three more variables (see ROADMAP.md
"Running sweeps"):

* ``REPRO_JOBS`` — worker-process count for the parallel sweep executor
  (default 1 = serial; parallel sweeps are bit-identical to serial ones,
  asserted by ``tests/test_sweep_executor.py``);
* ``REPRO_BACKEND`` — sweep fabric: ``local`` (default) or ``cluster``
  (socket broker/workers, see ``python -m repro.cluster``);
* ``REPRO_CACHE_DIR`` — directory of the persistent on-disk run cache;
  when set, grid points computed by an earlier invocation (or another
  process) are loaded instead of re-simulated.  Entries are namespaced by
  a configuration fingerprint, so changing profile/engine/scale can never
  serve stale results.

The ``bench_smoke`` marker (registered in the repository's ``pytest.ini``)
tags the representative one-point-per-sweep checks (see
``tests/test_bench_smoke.py`` and ``bench_sweep_scaling.py``) that exercise
the parallel path inside tier-1 time budgets: ``pytest -m bench_smoke``.
The sibling ``fuzz_smoke`` marker selects the differential-fuzz corpus
(``tests/test_fuzz_smoke.py``); long fuzzing campaigns run through
``python -m repro.testing.fuzz`` and their throughput is measured by
``bench_fuzz_throughput.py``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.report import render_figure, render_table  # noqa: E402
from repro.api import ExperimentSpec, Session  # noqa: E402


def _spec() -> ExperimentSpec:
    name = os.environ.get("REPRO_BENCH_PROFILE", "fast").lower()
    if name not in ("full", "smoke"):
        name = "fast"
    # The spec leaves `engine` unpinned, so Session's resolve_execution
    # applies REPRO_ENGINE (and REPRO_JOBS / REPRO_BACKEND /
    # REPRO_CACHE_DIR) through the one documented precedence chain.
    return ExperimentSpec.profile(name)


@pytest.fixture(scope="session")
def session() -> Session:
    with Session(_spec()) as instance:
        yield instance
    # Session.__exit__ shuts the worker pool / cluster broker down.


_RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a reproduced figure/table and persist it under benchmarks/results/.

    The printed form appears in the pytest output when run with ``-s``; the
    persisted text file survives regardless of output capturing, so a plain
    ``pytest benchmarks/ --benchmark-only`` still leaves every reproduced
    series on disk.
    """

    _RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(artifact) -> None:
        if hasattr(artifact, "series"):
            text = render_figure(artifact)
            name = artifact.figure_id
        else:
            text = render_table(artifact)
            name = artifact.table_id
        print()
        print(text)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                  encoding="utf-8")

    return _emit


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""

    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


# ---------------------------------------------------------------------- #
# Machine-readable sweep timings
# ---------------------------------------------------------------------- #
_SWEEP_JSON = _RESULTS_DIR / "BENCH_sweep.json"
_SWEEP_RECORDS: list = []


def record_sweep(figure: str, engine: str, jobs, seconds: float,
                 runs: int, **extra) -> None:
    """Append one sweep timing to ``benchmarks/results/BENCH_sweep.json``.

    ``figure`` names what was swept (a figure id or a column label),
    ``engine`` the simulation engine, ``jobs`` the execution mode (worker
    count or ``"clusterN"``), ``seconds`` the measured wall-clock, and
    ``runs`` how many grid points actually simulated.  The file is
    rewritten after every record, so partial benchmark runs still leave a
    valid JSON document; each pytest session starts a fresh record list.
    """

    import json
    import time

    _SWEEP_RECORDS.append({
        "figure": figure,
        "engine": engine,
        "jobs": jobs,
        "seconds": round(seconds, 3),
        "runs": runs,
        **extra,
    })
    _RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "profile": os.environ.get("REPRO_BENCH_PROFILE", "fast"),
        "records": _SWEEP_RECORDS,
    }
    _SWEEP_JSON.write_text(json.dumps(document, indent=2) + "\n",
                           encoding="utf-8")

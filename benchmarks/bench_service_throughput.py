"""Cold-vs-warm figure requests through the experiment service.

What the HTTP daemon (``repro.service``) buys: the *first* request for a
figure pays the full sweep (plan → futures → aggregate), every later
request inside the TTL window is a dict lookup in the in-memory figure
cache.  This benchmark serves one figure through a real
:class:`~repro.service.server.ThreadingHTTPServer` + stdlib client pair
and times both regimes:

* **cold** — one request on a freshly registered spec: seconds to first
  figure (sweep execution dominates);
* **warm** — a burst of requests against the now-hot TTL cache:
  requests/second of pure serve path (HTTP + JSON + cache lookup), with
  the server's run counter asserting that zero new sweep points executed.

Both land in ``benchmarks/results/BENCH_sweep.json`` via
``conftest.record_sweep`` (engine ``service-cold`` / ``service-warm``) so
serve-path regressions are tracked numerically like engine regressions.

Scale follows ``REPRO_BENCH_PROFILE`` (tiny figures regardless — the
point is the serve path, not the sweep), concurrency is a single client;
``tests/test_service.py`` covers the concurrent/coalescing behaviour.
"""

from __future__ import annotations

import time

import pytest

from repro.service import QuotaPolicy, ServiceClient, start_service

from conftest import record_sweep, run_once

_FIGURE = "fig8"
_WARM_REQUESTS = 200


@pytest.mark.service_smoke
def test_service_cold_then_warm_throughput(benchmark):
    def measure():
        with start_service(cache_dir="", ttl=3600.0,
                           policy=QuotaPolicy(rate=1.0, burst=3600.0)
                           ) as running:
            client = ServiceClient(running.address, client_id="bench")
            fingerprint = client.register_spec({"profile": "tiny"})

            started = time.perf_counter()
            figure, state = client.figure_response(fingerprint, _FIGURE)
            cold_seconds = time.perf_counter() - started
            assert state == "miss" and figure["figure_id"] == _FIGURE
            stats = running.service.statsz()
            executed = stats["sessions"][fingerprint]["runs_executed"]
            record_sweep(figure=f"service-{_FIGURE}", engine="service-cold",
                         jobs="http1", seconds=cold_seconds, runs=executed)

            started = time.perf_counter()
            for _ in range(_WARM_REQUESTS):
                _, state = client.figure_response(fingerprint, _FIGURE)
                assert state == "hit"
            warm_seconds = time.perf_counter() - started
            stats = running.service.statsz()
            # The whole warm burst executed zero new sweep points.
            assert stats["sessions"][fingerprint]["runs_executed"] == executed
            requests_per_second = _WARM_REQUESTS / warm_seconds
            record_sweep(figure=f"service-{_FIGURE}", engine="service-warm",
                         jobs="http1", seconds=warm_seconds,
                         runs=0, requests=_WARM_REQUESTS,
                         requests_per_second=round(requests_per_second, 1))
            return cold_seconds, warm_seconds

    cold_seconds, warm_seconds = run_once(benchmark, measure)
    # The warm serve path must beat one cold sweep by a wide margin —
    # per-request, TTL hits should be orders of magnitude cheaper.
    assert warm_seconds / _WARM_REQUESTS < cold_seconds

"""Table 1 — simulated system configuration."""

from conftest import run_once


def test_table1_system_configuration(benchmark, session, emit):
    table = run_once(benchmark, session.table, "table1")
    emit(table)
    components = dict(zip(table.column("component"), table.column("parameters")))
    assert components["processor"]["cores"] == 4
    assert components["processor"]["issue_width"] == 4
    assert components["processor"]["instruction_window"] == 128
    assert components["memory_controller"]["scheduler"] == "frfcfs_cap"
    assert components["memory_controller"]["cap"] == 4
    assert components["dram"]["banks_total"] == 32

"""Table 3 — workload characteristics (RBMPKI and hot-row counts).

Characterises the synthetic workload suite the way the paper characterises
its trace suite, and prints the paper's reference rows alongside.
"""

from conftest import run_once


def test_table3_workload_characteristics(benchmark, session, emit):
    table = run_once(benchmark, session.table, "table3")
    emit(table)
    emit(session.table("table3_paper"))
    assert table.rows[-1]["Workload"] == "Average"
    rbmpkis = [row["RBMPKI"] for row in table.rows[:-1]]
    assert rbmpkis == sorted(rbmpkis, reverse=True)
    # The attacker trace shows up with concentrated hot rows.
    attacker_rows = [r for r in table.rows if "attacker" in str(r["Workload"])]
    assert attacker_rows and attacker_rows[0]["ACT-128+"] >= 8

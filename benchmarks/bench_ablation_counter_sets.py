"""Ablation — dual time-interleaved counter sets vs a single hard-reset set.

The paper (§4.2, Fig. 4) keeps two score counter sets so that monitoring is
continuous: right after a window boundary the active set already holds a
full window's worth of training.  A single counter set that is reset at each
boundary goes blind for a while, which an attacker can exploit by
concentrating its hammering just after each reset.

This ablation measures, for both designs, how many preventive actions an
attacker can trigger after a window boundary before being flagged again.
"""

from conftest import run_once

from repro.core.scores import DualCounterSet, ScoreCounterSet
from repro.core.suspect import SuspectDetector


def _actions_until_flagged(dual: bool, num_threads: int = 4) -> int:
    detector = SuspectDetector(threat_threshold=4.0, outlier_threshold=0.65)
    if dual:
        scores = DualCounterSet(num_threads)
        add = scores.add
        read = scores.scores
        rotate = scores.rotate
    else:
        single = ScoreCounterSet(num_threads)
        add = single.add
        read = lambda: list(single.scores)  # noqa: E731
        rotate = single.reset

    def one_action():
        # Attacker responsible for ~all activations of every action.
        add(3, 0.94)
        for t in range(3):
            add(t, 0.02)

    # Train through one full window in which the attacker is flagged.
    for _ in range(20):
        one_action()
    assert 3 in detector.evaluate(read()).suspects
    # Window boundary.
    rotate()
    # How many further actions until the attacker is flagged again?
    actions = 0
    while 3 not in detector.evaluate(read()).suspects and actions < 100:
        one_action()
        actions += 1
    return actions


def test_ablation_counter_sets(benchmark, emit):
    def run_both():
        return _actions_until_flagged(True), _actions_until_flagged(False)

    dual, single = run_once(benchmark, run_both)
    print(f"\nactions to re-flag after window boundary: dual={dual}, "
          f"single={single}")
    # The dual-set design re-flags immediately (no blind spot); the single
    # hard-reset set gives the attacker a grace period.
    assert dual == 0
    assert single >= 4

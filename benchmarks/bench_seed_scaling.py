"""Wall-clock cost of the seed axis: 1/2/4 seeds × 1/2 workers.

A spec with ``seeds=(0, ..., n-1)`` multiplies every sweep-plan grid
point (and every per-trace standalone-IPC baseline) across its seeds, so
a figure's simulation cost grows linearly with the seed count — while
the aggregation fold (:mod:`repro.analysis.aggregate`) stays in-memory
and cheap.  This benchmark times the same fig. 6 sweep at 1, 2, and 4
seeds, serially and on the ``jobs=2`` process pool — a **fresh session
with cold caches per measurement** — so the recorded timings expose both
the linear seed scaling and how much of it the pool claws back.

Correctness of the fold itself is pinned by
``tests/test_seed_statistics.py`` (serial ≡ pool ≡ cluster, single-seed
bit-stability); here we only assert the structural invariants — run
counts scale with the seed count and multi-seed figures carry per-cell
statistics — and record the wall-clock.

Measured modes can be overridden via ``REPRO_SEED_SCALING`` (comma-
separated ``SEEDSxJOBS`` pairs, default ``1x1,2x1,4x1,2x2,4x2``).
"""

from __future__ import annotations

import os

import pytest

from repro.api import ExperimentSpec, Session

from conftest import run_once

#: One attack mix, two mechanisms, one low threshold — the smallest grid
#: whose per-seed cost is dominated by simulation, not session setup.
_BASE = dict(
    sim_cycles=4_000,
    entries_per_core=1_500,
    attacker_entries=2_000,
    nrh_sweep=(1024, 64),
    attack_mixes=("MMLA",),
    benign_mixes=("MMLL",),
    mechanisms=("para", "rfm"),
)


def _modes():
    raw = os.environ.get("REPRO_SEED_SCALING", "1x1,2x1,4x1,2x2,4x2")
    modes = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        seeds, _, jobs = part.partition("x")
        modes.append((int(seeds), int(jobs or 1)))
    return modes


#: Per-seed-count serial run counts; the pool must execute exactly as
#: many simulations as the serial path for the same seed count.
_RUNS_BY_SEEDS = {}


def _sweep(n_seeds: int, jobs: int):
    spec = ExperimentSpec(seeds=tuple(range(n_seeds)), **_BASE)
    # cache_dir="" force-disables the disk cache even when REPRO_CACHE_DIR
    # is exported: every measurement must run its full seed batch cold.
    with Session(spec, jobs=jobs, cache_dir="") as session:
        figure = session.figure("fig6", nrh=64)
        return figure, session.runs_executed


@pytest.mark.bench_smoke
@pytest.mark.stats_smoke
@pytest.mark.parametrize(
    "n_seeds,jobs", _modes(),
    ids=[f"seeds{s}-jobs{j}" for s, j in _modes()],
)
def test_seed_scaling(benchmark, n_seeds, jobs):
    figure, runs = run_once(benchmark, _sweep, n_seeds, jobs)
    assert runs > 0
    # The seed axis multiplies the grid: n seeds run exactly n times the
    # single-seed simulation count, on every executor.
    reference = _RUNS_BY_SEEDS.setdefault(n_seeds, runs)
    assert runs == reference
    if 1 in _RUNS_BY_SEEDS:
        assert runs == n_seeds * _RUNS_BY_SEEDS[1]
    for series in figure.series.values():
        if n_seeds == 1:
            assert series.stats is None or not series.stats
        else:
            assert all(cell.n == n_seeds for cell in series.stats)

"""Wall-clock scaling of the parallel sweep executor.

Runs the same fig. 6/8-style (mix, mechanism, N_RH, BreakHammer) grid with
1, 2, and 4 worker processes — a **fresh runner with cold caches per
measurement**, so each timing covers the full grid execution.  On a
multi-core host the recorded wall-clock time shrinks as the worker count
grows (the grid is embarrassingly parallel; PR-level speedup is bounded by
the slowest single run and by pool start-up); on a single-core host the
timings degrade gracefully to roughly serial cost plus pool overhead.

Parallel results are bit-identical to serial ones — asserted here on the
figure aggregates, and in detail by ``tests/test_sweep_executor.py``.

Worker counts can be overridden via ``REPRO_SCALING_JOBS`` (comma-separated
list, default ``1,2,4``).
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.analysis.experiments import ExperimentRunner, HarnessConfig

from conftest import run_once

#: The swept grid: one attack mix, three mechanisms, two thresholds —
#: 12 simulation grid points + the no-mitigation baseline + standalone-IPC
#: baselines, exactly the shape behind Figs. 6 and 8.
_SCALING_PROFILE = HarnessConfig(
    sim_cycles=4_000,
    entries_per_core=1_500,
    attacker_entries=2_000,
    nrh_sweep=(1024, 64),
    attack_mixes=("MMLA",),
    benign_mixes=("MMLL",),
    mechanisms=("para", "graphene", "rfm"),
    seeds=(0,),
)


def _job_counts():
    raw = os.environ.get("REPRO_SCALING_JOBS", "1,2,4")
    return [int(part) for part in raw.split(",") if part.strip()]


#: Serial reference aggregates, computed once and compared against every
#: parallel measurement (figure equality == bit-identical RunStatistics
#: underneath, since every series value is derived from them).
_REFERENCE = {}


def _sweep(jobs: int):
    # cache_dir="" force-disables the disk cache even when REPRO_CACHE_DIR
    # is exported: every measurement must run the full grid cold.
    config = dataclasses.replace(_SCALING_PROFILE, jobs=jobs, cache_dir="")
    with ExperimentRunner(config) as runner:
        fig6 = runner.figure6(nrh=64)
        fig8 = runner.figure8()
        return fig6, fig8, runner.runs_executed


@pytest.mark.bench_smoke
@pytest.mark.parametrize("jobs", _job_counts())
def test_sweep_scaling(benchmark, jobs):
    fig6, fig8, runs = run_once(benchmark, _sweep, jobs)
    assert runs > 0
    if not _REFERENCE:
        _REFERENCE["fig6"], _REFERENCE["fig8"] = fig6.as_dict(), fig8.as_dict()
    else:
        assert fig6.as_dict() == _REFERENCE["fig6"]
        assert fig8.as_dict() == _REFERENCE["fig8"]

"""Wall-clock scaling of the parallel sweep backends.

Runs the same fig. 6/8-style (mix, mechanism, N_RH, BreakHammer) grid with
1, 2, and 4 process-pool workers **and through the cluster backend**
(socket broker + 2 spawned local workers, mmap'd trace spool) — a **fresh
session with cold caches per measurement**, so each timing covers the full
grid execution.  On a multi-core host the recorded wall-clock time shrinks
as the worker count grows (the grid is embarrassingly parallel; speedup is
bounded by the slowest single run plus pool/broker start-up); on a
single-core host the timings degrade gracefully to roughly serial cost
plus fabric overhead.

Every backend is bit-identical to serial — asserted here on the figure
aggregates, and in detail by ``tests/test_sweep_executor.py`` (process
pool) and ``tests/test_cluster.py`` (cluster).

Measured modes can be overridden via ``REPRO_SCALING_JOBS`` (comma-
separated; integers are process-pool worker counts, ``clusterN`` is the
cluster backend with N spawned workers; default ``1,2,4,cluster2``).

``test_hetero_cost_vs_fifo`` additionally measures the broker's
cost-aware longest-job-first scheduling (chunked claims included) against
blind FIFO dispatch on a deliberately heterogeneous queue — expensive
cycle-engine grid points submitted behind a wall of cheap standalone-IPC
baselines.  Two wall-clocks per mode go into ``BENCH_sweep.json``:
``grid_seconds`` (time until the expensive grid figure is complete — the
sweep's critical path, which LJF shrinks on any machine by starting the
expensive points before the cheap wall instead of after it) and
``seconds`` (the full makespan, which LJF additionally shrinks when
workers run on separate cores by backfilling the odd expensive tail with
chunked cheap points).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import ExperimentSpec, Session

from conftest import record_sweep, run_once

#: The swept grid: one attack mix, three mechanisms, two thresholds —
#: 12 simulation grid points + the no-mitigation baseline + standalone-IPC
#: baselines, exactly the shape behind Figs. 6 and 8.
_SCALING_SPEC = ExperimentSpec(
    sim_cycles=4_000,
    entries_per_core=1_500,
    attacker_entries=2_000,
    nrh_sweep=(1024, 64),
    attack_mixes=("MMLA",),
    benign_mixes=("MMLL",),
    mechanisms=("para", "graphene", "rfm"),
    seeds=(0,),
)


def _modes():
    raw = os.environ.get("REPRO_SCALING_JOBS", "1,2,4,cluster2")
    return [part.strip() for part in raw.split(",") if part.strip()]


#: Serial reference aggregates, computed once and compared against every
#: parallel measurement (figure equality == bit-identical RunStatistics
#: underneath, since every series value is derived from them).
_REFERENCE = {}


def _open_session(mode: str) -> Session:
    # cache_dir="" force-disables the disk cache even when REPRO_CACHE_DIR
    # is exported: every measurement must run the full grid cold.
    if mode.startswith("cluster"):
        workers = int(mode[len("cluster"):] or 2)
        return Session(_SCALING_SPEC, backend="cluster", workers=workers,
                       cache_dir="")
    return Session(_SCALING_SPEC, jobs=int(mode), backend="local",
                   cache_dir="")


def _sweep(mode: str):
    with _open_session(mode) as session:
        started = time.perf_counter()
        fig6 = session.figure("fig6", nrh=64)
        fig8 = session.figure("fig8")
        record_sweep(figure="fig6+fig8", engine=session.engine, jobs=mode,
                     seconds=time.perf_counter() - started,
                     runs=session.runs_executed)
        return fig6, fig8, session.runs_executed


@pytest.mark.bench_smoke
@pytest.mark.parametrize("mode", _modes())
def test_sweep_scaling(benchmark, mode):
    fig6, fig8, runs = run_once(benchmark, _sweep, mode)
    assert runs > 0
    if not _REFERENCE:
        _REFERENCE["fig6"], _REFERENCE["fig8"] = fig6.as_dict(), fig8.as_dict()
    else:
        assert fig6.as_dict() == _REFERENCE["fig6"]
        assert fig8.as_dict() == _REFERENCE["fig8"]


# ---------------------------------------------------------------------- #
# Cost-aware scheduling vs FIFO on a deliberately heterogeneous queue
# ---------------------------------------------------------------------- #
#: A queue with a wide per-point cost spread: cycle-engine grid points
#: (five traces each, attacker included — seconds apiece) next to
#: single-trace standalone-IPC baselines (several times cheaper).  This
#: is the cycle-vs-fast cost contrast of real mixed campaigns expressed
#: inside one spec, which is what the broker's cost model actually
#: schedules on: predicted seconds, not engine labels.
#:
#: The grid deliberately holds an **odd** number of expensive points
#: (three, against two workers).  Under cheap-first FIFO the expensive
#: grid starts only after the whole baseline wall has drained, so the
#: grid figure's critical path carries the full cheap total — on every
#: machine; with per-core workers FIFO additionally strands one worker
#: on the two-point expensive tail while the other sits idle.  Under LJF
#: the expensive points start immediately and the chunked cheap points
#: backfill the tail.
_HETERO_SPEC = ExperimentSpec(
    sim_cycles=50_000,
    entries_per_core=1_000,
    attacker_entries=1_400,
    nrh_sweep=(64,),
    attack_mixes=("MMLA",),
    benign_mixes=("MMLL",),
    mechanisms=("para", "graphene", "rfm"),
    seeds=(0,),
    engine="cycle",
)


def _hetero_sweep(scheduling: str):
    """One cold 2-worker cluster pass over the heterogeneous queue.

    Submission order is adversarial for FIFO (all cheap alone baselines
    first, the three expensive grid runs last — the expensive stragglers
    land on the tail, and their odd count strands one worker); every
    task is queued before the elastic fleet finishes booting, so both
    schedulers see the identical full backlog.
    """

    from repro.api.spec import RunPoint

    previous = os.environ.get("REPRO_CLUSTER_SCHED")
    os.environ["REPRO_CLUSTER_SCHED"] = scheduling
    try:
        with Session(_HETERO_SPEC, backend="cluster", workers=2,
                     cache_dir="") as session:
            started = time.perf_counter()
            handles = session.submit_alone("MMLA")
            handles += session.submit_alone("MMLL")
            grid = [RunPoint(mix="MMLA", mechanism=mech, nrh=nrh,
                             breakhammer=False)
                    for mech in _HETERO_SPEC.mechanisms
                    for nrh in _HETERO_SPEC.nrh_sweep]
            grid_handles = session.submit_grid(grid)
            outcomes = [handle.result() for handle in grid_handles]
            # Critical path: the expensive grid figure is done here.
            # Under LJF that happens *before* the cheap baseline wall;
            # under FIFO only after it.
            grid_seconds = time.perf_counter() - started
            for handle in handles:
                handle.result()
            seconds = time.perf_counter() - started
            record_sweep(figure="hetero-cycle-grid", engine=session.engine,
                         jobs=f"cluster2-{scheduling}", seconds=seconds,
                         runs=session.runs_executed,
                         scheduling=scheduling,
                         grid_seconds=round(grid_seconds, 3))
            stats = session.cluster_stats()
            return outcomes, (grid_seconds, seconds), stats
    finally:
        if previous is None:
            os.environ.pop("REPRO_CLUSTER_SCHED", None)
        else:
            os.environ["REPRO_CLUSTER_SCHED"] = previous


_HETERO_RESULTS = {}


@pytest.mark.bench_smoke
@pytest.mark.parametrize("scheduling", ("fifo", "cost"))
def test_hetero_cost_vs_fifo(benchmark, scheduling):
    import dataclasses

    outcomes, timings, stats = run_once(benchmark, _hetero_sweep, scheduling)
    assert stats["scheduling"] == scheduling
    if scheduling == "cost":
        assert stats["scheduled_by_cost"] > 0
        assert stats["chunked_claims"] >= 1
    # Scheduling is a wall-clock choice, never a correctness one: both
    # orders produce bit-identical grid statistics.
    frozen = [dataclasses.asdict(outcome) for outcome in outcomes]
    _HETERO_RESULTS.setdefault("outcomes", frozen)
    assert frozen == _HETERO_RESULTS["outcomes"]
    _HETERO_RESULTS[scheduling] = timings
    if "fifo" in _HETERO_RESULTS and "cost" in _HETERO_RESULTS:
        fifo_grid, fifo_total = _HETERO_RESULTS["fifo"]
        cost_grid, cost_total = _HETERO_RESULTS["cost"]
        print(f"\nhetero queue, 2 workers — grid critical path: "
              f"fifo {fifo_grid:.2f}s vs cost-LJF {cost_grid:.2f}s; "
              f"makespan: fifo {fifo_total:.2f}s vs "
              f"cost-LJF {cost_total:.2f}s")
        # The structural win: under FIFO the grid figure waits behind
        # the whole cheap baseline wall (~3s at this scale), under LJF
        # it does not.  The margin is far above scheduler jitter.
        assert cost_grid < fifo_grid

"""Wall-clock scaling of the parallel sweep backends.

Runs the same fig. 6/8-style (mix, mechanism, N_RH, BreakHammer) grid with
1, 2, and 4 process-pool workers **and through the cluster backend**
(socket broker + 2 spawned local workers, mmap'd trace spool) — a **fresh
session with cold caches per measurement**, so each timing covers the full
grid execution.  On a multi-core host the recorded wall-clock time shrinks
as the worker count grows (the grid is embarrassingly parallel; speedup is
bounded by the slowest single run plus pool/broker start-up); on a
single-core host the timings degrade gracefully to roughly serial cost
plus fabric overhead.

Every backend is bit-identical to serial — asserted here on the figure
aggregates, and in detail by ``tests/test_sweep_executor.py`` (process
pool) and ``tests/test_cluster.py`` (cluster).

Measured modes can be overridden via ``REPRO_SCALING_JOBS`` (comma-
separated; integers are process-pool worker counts, ``clusterN`` is the
cluster backend with N spawned workers; default ``1,2,4,cluster2``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import ExperimentSpec, Session

from conftest import record_sweep, run_once

#: The swept grid: one attack mix, three mechanisms, two thresholds —
#: 12 simulation grid points + the no-mitigation baseline + standalone-IPC
#: baselines, exactly the shape behind Figs. 6 and 8.
_SCALING_SPEC = ExperimentSpec(
    sim_cycles=4_000,
    entries_per_core=1_500,
    attacker_entries=2_000,
    nrh_sweep=(1024, 64),
    attack_mixes=("MMLA",),
    benign_mixes=("MMLL",),
    mechanisms=("para", "graphene", "rfm"),
    seeds=(0,),
)


def _modes():
    raw = os.environ.get("REPRO_SCALING_JOBS", "1,2,4,cluster2")
    return [part.strip() for part in raw.split(",") if part.strip()]


#: Serial reference aggregates, computed once and compared against every
#: parallel measurement (figure equality == bit-identical RunStatistics
#: underneath, since every series value is derived from them).
_REFERENCE = {}


def _open_session(mode: str) -> Session:
    # cache_dir="" force-disables the disk cache even when REPRO_CACHE_DIR
    # is exported: every measurement must run the full grid cold.
    if mode.startswith("cluster"):
        workers = int(mode[len("cluster"):] or 2)
        return Session(_SCALING_SPEC, backend="cluster", workers=workers,
                       cache_dir="")
    return Session(_SCALING_SPEC, jobs=int(mode), backend="local",
                   cache_dir="")


def _sweep(mode: str):
    with _open_session(mode) as session:
        started = time.perf_counter()
        fig6 = session.figure("fig6", nrh=64)
        fig8 = session.figure("fig8")
        record_sweep(figure="fig6+fig8", engine=session.engine, jobs=mode,
                     seconds=time.perf_counter() - started,
                     runs=session.runs_executed)
        return fig6, fig8, session.runs_executed


@pytest.mark.bench_smoke
@pytest.mark.parametrize("mode", _modes())
def test_sweep_scaling(benchmark, mode):
    fig6, fig8, runs = run_once(benchmark, _sweep, mode)
    assert runs > 0
    if not _REFERENCE:
        _REFERENCE["fig6"], _REFERENCE["fig8"] = fig6.as_dict(), fig8.as_dict()
    else:
        assert fig6.as_dict() == _REFERENCE["fig6"]
        assert fig8.as_dict() == _REFERENCE["fig8"]

"""Headline numbers — the abstract's average-improvement claims.

The paper's abstract: with an attacker present, BreakHammer improves benign
performance by 90.1% and reduces DRAM energy by 55.7% on average, and §8.1
reports a 71.6% average reduction in preventive actions.  This benchmark
recomputes the same three aggregates at the harness's scale and checks their
directions.
"""

from conftest import run_once


def test_headline_numbers(benchmark, session, emit):
    numbers = run_once(benchmark, session.headline_numbers)
    print("\nheadline aggregates (attacker present, lowest N_RH):")
    for key, value in numbers.items():
        print(f"  {key}: {value:.3f}")
    assert numbers["mean_benign_speedup"] > 1.0
    assert numbers["mean_energy_ratio"] <= 1.05
    assert numbers["mean_preventive_action_ratio"] <= 1.1

"""Figure 14 — all-benign unfairness with BreakHammer (per mix).

Normalised to each mechanism alone; the paper reports a 0.9% average
increase, i.e. essentially neutral.
"""

from conftest import run_once


def test_fig14_benign_unfairness(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig14")
    emit(figure)
    for series in figure.series.values():
        assert 0.7 <= series.values[-1] <= 1.35

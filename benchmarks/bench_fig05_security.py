"""Figure 5 — analytical security bound (Expression 2).

Exactly reproduces the paper's Fig. 5: the maximum RowHammer-preventive
score an undetected attack thread can accumulate, normalised to the benign
average, as a function of the attacker's share of hardware threads, for ten
TH_outlier settings.  This figure is analytical, so the paper's two headline
observations (4.71x at 50% threads / TH=0.65, and 1.90x at 90% threads /
TH=0.05) are matched exactly.
"""

import pytest

from conftest import run_once


def test_fig05_security_bound(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig5")
    emit(figure)
    idx_50 = figure.x_values.index(50)
    idx_90 = figure.x_values.index(90)
    assert figure.get("TH_outlier=0.65").values[idx_50] == pytest.approx(
        4.71, abs=0.05)
    assert figure.get("TH_outlier=0.05").values[idx_90] == pytest.approx(
        1.90, abs=0.05)
    # Every curve is non-decreasing in the attacker share.
    for series in figure.series.values():
        assert all(b >= a - 1e-9 for a, b in zip(series.values,
                                                 series.values[1:]))

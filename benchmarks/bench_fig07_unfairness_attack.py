"""Figure 7 — unfairness (max benign slowdown) under attack.

Normalised to each mechanism without BreakHammer; values below 1.0 mean
BreakHammer reduced the worst benign slowdown (the paper reports an average
reduction of 45.8% at N_RH = 1K).
"""

from conftest import run_once


def test_fig07_unfairness_under_attack(benchmark, session, emit):
    nrh = min(256, session.spec.nrh_default)
    figure = run_once(benchmark, session.figure, "fig7", nrh=nrh)
    emit(figure)
    geomeans = [series.values[-1] for series in figure.series.values()]
    # Unfairness should not systematically worsen; most mechanisms improve.
    assert sum(g <= 1.05 for g in geomeans) >= len(geomeans) // 2

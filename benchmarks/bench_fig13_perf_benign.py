"""Figure 13 — all-benign performance with BreakHammer (per mix).

With no attacker present, mechanism+BreakHammer is normalised to the
mechanism alone.  The paper reports +0.7% on average (max +2.4%): BreakHammer
must be performance-neutral for benign workloads.
"""

from conftest import run_once


def test_fig13_benign_performance(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig13")
    emit(figure)
    for series in figure.series.values():
        geomean = series.values[-1]
        assert 0.85 <= geomean <= 1.2  # neutrality within scaled-run noise

"""Throughput of the differential-fuzzer loop (scenarios per second).

Each scenario of a fuzzing campaign costs two full simulations (``cycle``
and ``fast``), so the fuzzer's coverage per CPU-hour is bounded by this
loop.  The benchmark replays a fixed slice of the smoke-profile scenario
stream — the same generator the CLI and the ``fuzz_smoke`` corpus use — and
reports scenarios/second in the benchmark ``extra_info``, so regressions in
either engine (or in trace generation, which dominates short runs) show up
as a throughput drop.

Run with ``pytest benchmarks/bench_fuzz_throughput.py``; scale the slice
with ``REPRO_FUZZ_BENCH_COUNT`` (default 10).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.testing.fuzz import run_differential
from repro.testing.scenarios import generate_scenarios

from conftest import run_once

#: Campaign seed of the benchmarked slice; fixed so timings are comparable
#: across invocations.
_BENCH_SEED = 0


def _count() -> int:
    return max(1, int(os.environ.get("REPRO_FUZZ_BENCH_COUNT", "10")))


def _campaign(scenarios):
    reports = [run_differential(scenario) for scenario in scenarios]
    divergences = [r for r in reports if not r.identical]
    assert not divergences, divergences[0].summary()
    return reports


@pytest.mark.bench_smoke
def test_fuzz_throughput(benchmark):
    scenarios = generate_scenarios(_BENCH_SEED, _count())
    started = time.perf_counter()
    reports = run_once(benchmark, _campaign, scenarios)
    elapsed = max(1e-9, time.perf_counter() - started)

    benchmark.extra_info["scenarios"] = len(reports)
    benchmark.extra_info["scenarios_per_second"] = round(
        len(reports) / elapsed, 3)
    # How much work the fast engine skipped across the slice: the tick
    # ratio is the speedup ceiling the differential pays for twice-running.
    ticks_cycle = sum(r.ticks_cycle for r in reports)
    ticks_fast = sum(r.ticks_fast for r in reports)
    benchmark.extra_info["fast_engine_skip_factor"] = round(
        ticks_cycle / max(1, ticks_fast), 3)
    assert len(reports) == len(scenarios)

"""Figure 18 — BreakHammer-paired mechanisms vs BlockHammer.

Weighted speedup normalised to a no-mitigation baseline across the N_RH
sweep.  The paper's key observation: BlockHammer collapses as N_RH drops
(from +78.6% to -98.0%) because it blocks rows that even benign applications
activate frequently, whereas every BreakHammer-paired mechanism stays ahead
of it.
"""

from conftest import run_once


def test_fig18_blockhammer_comparison(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig18")
    emit(figure)
    block = figure.get("blockhammer").values
    # BlockHammer degrades as N_RH shrinks.
    assert block[-1] <= block[0] + 0.05
    # At the lowest N_RH, the majority of BreakHammer-paired mechanisms beat
    # BlockHammer (the paper: all of them do).
    wins = sum(
        1 for mechanism in session.spec.mechanisms
        if figure.get(f"{mechanism}+BH").values[-1] >= block[-1] - 1e-6
    )
    assert wins >= len(session.spec.mechanisms) * 2 // 3

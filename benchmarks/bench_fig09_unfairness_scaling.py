"""Figure 9 — unfairness scaling with N_RH (attacker present).

Maximum benign slowdown of each BreakHammer-paired mechanism, normalised to
the no-mitigation baseline, across the N_RH sweep (paper: average reduction
of 31.5% relative to the mechanisms alone).
"""

from conftest import run_once


def test_fig09_unfairness_scaling(benchmark, session, emit):
    figure = run_once(benchmark, session.figure, "fig9")
    emit(figure)
    assert all(label.endswith("+BH") for label in figure.series)
    for series in figure.series.values():
        assert all(v > 0 for v in series.values)
